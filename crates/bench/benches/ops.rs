//! Micro-benchmarks of the core choreographic operators: the per-op
//! overhead of the EPP-as-DI machinery (locally, comm, multicast,
//! broadcast, conclave, gather) under the centralized runner — i.e. the
//! cost of the library abstraction with communication taken out.

use chorus_core::{
    ChoreoOp, Choreography, Located, LocationSet as _, MultiplyLocated, Quire, Runner,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

chorus_core::locations! { A, B, C, D }
type Census = chorus_core::LocationSet!(A, B, C, D);
type Others = chorus_core::LocationSet!(B, C, D);

struct LocallyOnly;
impl Choreography<Located<u64, A>> for LocallyOnly {
    type L = Census;
    fn run(self, op: &impl ChoreoOp<Self::L>) -> Located<u64, A> {
        op.locally(A, |_| 1)
    }
}

struct CommOnce;
impl Choreography<Located<u64, B>> for CommOnce {
    type L = Census;
    fn run(self, op: &impl ChoreoOp<Self::L>) -> Located<u64, B> {
        let at_a = op.locally(A, |_| 1);
        op.comm(A, B, &at_a)
    }
}

struct MulticastOnce;
impl Choreography<MultiplyLocated<u64, Others>> for MulticastOnce {
    type L = Census;
    fn run(self, op: &impl ChoreoOp<Self::L>) -> MultiplyLocated<u64, Others> {
        let at_a = op.locally(A, |_| 1);
        op.multicast(A, Others::new(), &at_a)
    }
}

struct BroadcastOnce;
impl Choreography<u64> for BroadcastOnce {
    type L = Census;
    fn run(self, op: &impl ChoreoOp<Self::L>) -> u64 {
        let at_a = op.locally(A, |_| 1);
        op.broadcast(A, at_a)
    }
}

struct ConclaveOnce;
impl Choreography<MultiplyLocated<u64, Others>> for ConclaveOnce {
    type L = Census;
    fn run(self, op: &impl ChoreoOp<Self::L>) -> MultiplyLocated<u64, Others> {
        op.conclave(InnerWork)
    }
}
struct InnerWork;
impl Choreography<u64> for InnerWork {
    type L = Others;
    fn run(self, _op: &impl ChoreoOp<Self::L>) -> u64 {
        1
    }
}

struct GatherOnce;
impl Choreography<MultiplyLocated<Quire<u64, Others>, chorus_core::LocationSet!(A)>>
    for GatherOnce
{
    type L = Census;
    fn run(
        self,
        op: &impl ChoreoOp<Self::L>,
    ) -> MultiplyLocated<Quire<u64, Others>, chorus_core::LocationSet!(A)> {
        let facets = op.parallel_named(Others::new(), |name| name.len() as u64);
        op.gather(Others::new(), <chorus_core::LocationSet!(A)>::new(), &facets)
    }
}

fn bench_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("ops/centralized");
    group.warm_up_time(Duration::from_millis(300)).measurement_time(Duration::from_secs(1));
    let runner: Runner<Census> = Runner::new();

    group.bench_function("locally", |b| b.iter(|| black_box(runner.run(LocallyOnly))));
    group.bench_function("comm", |b| b.iter(|| black_box(runner.run(CommOnce))));
    group.bench_function("multicast_3", |b| b.iter(|| black_box(runner.run(MulticastOnce))));
    group.bench_function("broadcast_4", |b| b.iter(|| black_box(runner.run(BroadcastOnce))));
    group.bench_function("conclave", |b| b.iter(|| black_box(runner.run(ConclaveOnce))));
    group.bench_function("gather_3_to_1", |b| b.iter(|| black_box(runner.run(GatherOnce))));
    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
