//! E2 (paper Fig. 1): client–server KVS round-trip latency, centralized
//! and over the in-process transport — both the legacy shape (fresh
//! fabric + endpoint per run) and the session-multiplexed shape (one
//! long-lived endpoint pair, one session per run).

use chorus_core::{Endpoint, Runner};
use chorus_protocols::kvs_simple::{SimpleKvs, SimpleKvsCensus};
use chorus_protocols::roles::{Client, Primary};
use chorus_protocols::store::{Request, Response, SharedStore};
use chorus_transport::{LocalTransport, LocalTransportChannel};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_centralized(c: &mut Criterion) {
    let mut group = c.benchmark_group("kvs_simple/centralized");
    group.warm_up_time(Duration::from_millis(300)).measurement_time(Duration::from_secs(1));
    let runner: Runner<SimpleKvsCensus> = Runner::new();
    let store = SharedStore::new();
    store.put("k", "v");

    group.bench_function("get", |b| {
        b.iter(|| {
            let out = runner.run(SimpleKvs {
                request: runner.local(Request::Get("k".into())),
                state: runner.local(store.clone()),
            });
            black_box(runner.unwrap_located(out))
        })
    });
    group.bench_function("put", |b| {
        b.iter(|| {
            let out = runner.run(SimpleKvs {
                request: runner.local(Request::Put("k".into(), "w".into())),
                state: runner.local(store.clone()),
            });
            black_box(runner.unwrap_located(out))
        })
    });
    group.finish();
}

fn bench_distributed(c: &mut Criterion) {
    let mut group = c.benchmark_group("kvs_simple/local_transport");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);

    // Legacy shape: a fresh fabric, endpoint, and server thread per run.
    group.bench_function("get_round_trip_fresh_endpoint", |b| {
        b.iter(|| {
            let channel = LocalTransportChannel::<SimpleKvsCensus>::new();
            let ch = channel.clone();
            let server = std::thread::spawn(move || {
                let endpoint = Endpoint::new(LocalTransport::new(Primary, ch));
                let session = endpoint.session();
                let store = SharedStore::new();
                store.put("k", "v");
                session.epp_and_run(SimpleKvs {
                    request: session.remote(Client),
                    state: session.local(store),
                });
            });
            let endpoint = Endpoint::new(LocalTransport::new(Client, channel));
            let session = endpoint.session();
            let out = session.epp_and_run(SimpleKvs {
                request: session.local(Request::Get("k".into())),
                state: session.remote(Primary),
            });
            server.join().unwrap();
            assert_eq!(session.unwrap(out), Response::Found("v".into()));
        })
    });

    // Session shape: both endpoints and the server thread live across
    // the whole benchmark; each run is just a session.
    group.bench_function("get_round_trip_shared_endpoint", |b| {
        let channel = LocalTransportChannel::<SimpleKvsCensus>::new();
        let (id_tx, id_rx) = std::sync::mpsc::channel::<u64>();
        let ch = channel.clone();
        let server = std::thread::spawn(move || {
            let endpoint = Endpoint::new(LocalTransport::new(Primary, ch));
            let store = SharedStore::new();
            store.put("k", "v");
            for id in id_rx {
                let session = endpoint.session_with_id(id);
                session.epp_and_run(SimpleKvs {
                    request: session.remote(Client),
                    state: session.local(store.clone()),
                });
            }
        });
        let endpoint = Endpoint::new(LocalTransport::new(Client, channel));
        let mut next_id = 0u64;
        b.iter(|| {
            let id = next_id;
            next_id += 1;
            id_tx.send(id).expect("server thread alive");
            let session = endpoint.session_with_id(id);
            let out = session.epp_and_run(SimpleKvs {
                request: session.local(Request::Get("k".into())),
                state: session.remote(Primary),
            });
            assert_eq!(session.unwrap(out), Response::Found("v".into()));
        });
        drop(id_tx);
        server.join().unwrap();
    });
    group.finish();
}

criterion_group!(benches, bench_centralized, bench_distributed);
criterion_main!(benches);
