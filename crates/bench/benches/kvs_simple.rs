//! E2 (paper Fig. 1): client–server KVS round-trip latency, centralized
//! and over the in-process transport.

use chorus_core::{Projector, Runner};
use chorus_protocols::kvs_simple::{SimpleKvs, SimpleKvsCensus};
use chorus_protocols::roles::{Client, Primary};
use chorus_protocols::store::{Request, Response, SharedStore};
use chorus_transport::{LocalTransport, LocalTransportChannel};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_centralized(c: &mut Criterion) {
    let mut group = c.benchmark_group("kvs_simple/centralized");
    group.warm_up_time(Duration::from_millis(300)).measurement_time(Duration::from_secs(1));
    let runner: Runner<SimpleKvsCensus> = Runner::new();
    let store = SharedStore::new();
    store.put("k", "v");

    group.bench_function("get", |b| {
        b.iter(|| {
            let out = runner.run(SimpleKvs {
                request: runner.local(Request::Get("k".into())),
                state: runner.local(store.clone()),
            });
            black_box(runner.unwrap_located(out))
        })
    });
    group.bench_function("put", |b| {
        b.iter(|| {
            let out = runner.run(SimpleKvs {
                request: runner.local(Request::Put("k".into(), "w".into())),
                state: runner.local(store.clone()),
            });
            black_box(runner.unwrap_located(out))
        })
    });
    group.finish();
}

fn bench_distributed(c: &mut Criterion) {
    let mut group = c.benchmark_group("kvs_simple/local_transport");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);

    group.bench_function("get_round_trip", |b| {
        b.iter(|| {
            let channel = LocalTransportChannel::<SimpleKvsCensus>::new();
            let ch = channel.clone();
            let server = std::thread::spawn(move || {
                let transport = LocalTransport::new(Primary, ch);
                let projector = Projector::new(Primary, &transport);
                let store = SharedStore::new();
                store.put("k", "v");
                projector.epp_and_run(SimpleKvs {
                    request: projector.remote(Client),
                    state: projector.local(store),
                });
            });
            let transport = LocalTransport::new(Client, channel);
            let projector = Projector::new(Client, &transport);
            let out = projector.epp_and_run(SimpleKvs {
                request: projector.local(Request::Get("k".into())),
                state: projector.remote(Primary),
            });
            server.join().unwrap();
            assert_eq!(projector.unwrap(out), Response::Found("v".into()));
        })
    });
    group.finish();
}

criterion_group!(benches, bench_centralized, bench_distributed);
criterion_main!(benches);
