//! Micro-benchmarks of the wire-format substrate: encode/decode
//! throughput for the payload shapes the case studies actually send.

use chorus_protocols::store::{Request, Response};
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Duration;

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    group.warm_up_time(Duration::from_millis(300)).measurement_time(Duration::from_secs(1));

    let request = Request::Put("some-key".into(), "some-value".into());
    group.bench_function("encode_request", |b| {
        b.iter(|| black_box(chorus_wire::to_bytes(&request).unwrap()))
    });
    let bytes = chorus_wire::to_bytes(&request).unwrap();
    group.bench_function("decode_request", |b| {
        b.iter(|| black_box(chorus_wire::from_bytes::<Request>(&bytes).unwrap()))
    });

    let response = Response::Found("value".into());
    let response_bytes = chorus_wire::to_bytes(&response).unwrap();
    group.bench_function("decode_response", |b| {
        b.iter(|| black_box(chorus_wire::from_bytes::<Response>(&response_bytes).unwrap()))
    });

    // A resynch snapshot: the largest payload the KVS sends.
    let snapshot: BTreeMap<String, String> =
        (0..100).map(|i| (format!("key-{i}"), format!("value-{i}"))).collect();
    group.bench_function("encode_snapshot_100", |b| {
        b.iter(|| black_box(chorus_wire::to_bytes(&snapshot).unwrap()))
    });
    let snapshot_bytes = chorus_wire::to_bytes(&snapshot).unwrap();
    group.bench_function("decode_snapshot_100", |b| {
        b.iter(|| {
            black_box(chorus_wire::from_bytes::<BTreeMap<String, String>>(&snapshot_bytes).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
