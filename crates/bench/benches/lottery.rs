//! E5 (paper Figs. 12–13): DPrio lottery wall time, centralized and
//! distributed.

use chorus_bench::run_lottery;
use chorus_core::{Faceted, Runner};
use chorus_mpc::field::FLOTTERY;
use chorus_protocols::lottery::Lottery;
use chorus_protocols::roles::{Analyst, C1, C2, C3, S1, S2, S3};
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::marker::PhantomData;
use std::time::Duration;

type Clients = chorus_core::LocationSet!(C1, C2, C3);
type Servers = chorus_core::LocationSet!(S1, S2, S3);
type Census = chorus_core::LocationSet!(Analyst, C1, C2, C3, S1, S2, S3);

fn secret_map() -> BTreeMap<String, FLOTTERY> {
    [("C1", 11u64), ("C2", 22), ("C3", 33)]
        .into_iter()
        .map(|(k, v)| (k.to_string(), FLOTTERY::new(v)))
        .collect()
}

fn honest() -> BTreeMap<String, bool> {
    ["S1", "S2", "S3"].into_iter().map(|s| (s.to_string(), false)).collect()
}

fn bench_centralized(c: &mut Criterion) {
    let mut group = c.benchmark_group("lottery/centralized");
    group.warm_up_time(Duration::from_millis(300)).measurement_time(Duration::from_secs(2));
    let runner: Runner<Census> = Runner::new();
    group.bench_function("3_clients_3_servers", |b| {
        b.iter(|| {
            let secrets: Faceted<FLOTTERY, Clients> = runner.faceted(secret_map());
            let cheaters: Faceted<bool, Servers> = runner.faceted(honest());
            let out = runner.run(Lottery::<Clients, Servers, Census, _, _, _, _, _, _, _> {
                secrets: &secrets,
                tau: 300,
                cheaters: &cheaters,
                phantom: PhantomData,
            });
            black_box(runner.unwrap_located(out)).expect("honest run")
        })
    });
    group.finish();
}

fn bench_distributed(c: &mut Criterion) {
    let mut group = c.benchmark_group("lottery/distributed");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    group.bench_function("3_clients_3_servers", |b| {
        b.iter(|| {
            let secrets: BTreeMap<String, u64> = [("C1", 11u64), ("C2", 22), ("C3", 33)]
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect();
            let (result, _) = run_lottery!(
                clients = [C1, C2, C3],
                servers = [S1, S2, S3],
                secrets = secrets,
                tau = 300,
                cheaters = honest()
            );
            black_box(result).expect("honest run")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_centralized, bench_distributed);
criterion_main!(benches);
