//! E3/E6 (paper Fig. 2, Figs. 10–11): replicated KVS wall time by
//! backup count, conclaves-&-MLVs versus the broadcast-KoC baseline.
//!
//! The interesting output is the *ratio trend*: both libraries pay more
//! as backups grow, but the baseline pays an extra broadcast to every
//! participant per conditional (three per Put), so its cost grows
//! strictly faster. `koc_messages` reports the message counts behind
//! this.

use chorus_bench::{run_baseline_kvs, run_replicated_kvs};
use chorus_protocols::roles::{
    Backup1, Backup2, Backup3, Backup4, Backup5, Backup6, Backup7, Backup8,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_conclave_vs_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("kvs_backup/put");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);

    macro_rules! case {
        ($n:expr, $choreo:ident, [$($backup:ty),*]) => {
            group.bench_with_input(BenchmarkId::new("conclave", $n), &$n, |b, _| {
                b.iter(|| {
                    let (response, _, _) = run_replicated_kvs!(
                        backups = [$($backup),*],
                        request = Request::Put("k".into(), "v".into()),
                        corrupt = &[]
                    );
                    black_box(response)
                })
            });
            group.bench_with_input(BenchmarkId::new("baseline", $n), &$n, |b, _| {
                b.iter(|| {
                    let (response, _) = run_baseline_kvs!(
                        choreo = $choreo,
                        backups = [$($backup),*],
                        request = Request::Put("k".into(), "v".into()),
                        corrupt = &[]
                    );
                    black_box(response)
                })
            });
        };
    }

    case!(1, BaselineKvs1, [Backup1]);
    case!(2, BaselineKvs2, [Backup1, Backup2]);
    case!(4, BaselineKvs4, [Backup1, Backup2, Backup3, Backup4]);
    case!(
        8,
        BaselineKvs8,
        [Backup1, Backup2, Backup3, Backup4, Backup5, Backup6, Backup7, Backup8]
    );
    group.finish();
}

fn bench_resynch_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("kvs_backup/resynch");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);

    group.bench_function("put_with_corruption_4_backups", |b| {
        b.iter(|| {
            let (_, resynched, _) = run_replicated_kvs!(
                backups = [Backup1, Backup2, Backup3, Backup4],
                request = Request::Put("k".into(), "v".into()),
                corrupt = &["Backup2"]
            );
            assert!(resynched);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_conclave_vs_baseline, bench_resynch_path);
criterion_main!(benches);
