//! E4 (paper Figs. 8–9): GMW evaluation time by party count and gate
//! count — centralized (pure protocol compute) and distributed (threads
//! + channels).

use chorus_bench::run_gmw;
use chorus_core::{Faceted, LocationSet, LocationSetFoldable, Runner, Subset};
use chorus_mpc::Circuit;
use chorus_protocols::gmw::Gmw;
use chorus_protocols::roles::{P1, P2, P3, P4};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::marker::PhantomData;
use std::time::Duration;

fn and_chain(parties: &[&'static str], k: usize) -> Circuit {
    let mut circuit = Circuit::input(parties[0], 0);
    for i in 1..=k {
        circuit = circuit.and(Circuit::input(parties[i % parties.len()], 0));
    }
    circuit
}

fn inputs(parties: &[&str]) -> BTreeMap<String, Vec<bool>> {
    parties.iter().map(|p| (p.to_string(), vec![true])).collect()
}

fn run_centralized<P, PRefl, PFold>(
    circuit: &Circuit,
    input_map: BTreeMap<String, Vec<bool>>,
) -> bool
where
    P: LocationSet + Subset<P, PRefl> + LocationSetFoldable<P, P, PFold>,
{
    let runner: Runner<P> = Runner::new();
    let faceted: Faceted<Vec<bool>, P> = runner.faceted(input_map);
    runner.run(Gmw::<P, PRefl, PFold> { circuit, inputs: &faceted, phantom: PhantomData })
}

fn bench_gmw_centralized(c: &mut Criterion) {
    let mut group = c.benchmark_group("gmw/centralized_and_chain");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);

    for gates in [1usize, 4, 8] {
        let circuit2 = and_chain(&["P1", "P2"], gates);
        group.bench_with_input(BenchmarkId::new("2_parties", gates), &gates, |b, _| {
            b.iter(|| {
                black_box(run_centralized::<chorus_core::LocationSet!(P1, P2), _, _>(
                    &circuit2,
                    inputs(&["P1", "P2"]),
                ))
            })
        });
        let circuit3 = and_chain(&["P1", "P2", "P3"], gates);
        group.bench_with_input(BenchmarkId::new("3_parties", gates), &gates, |b, _| {
            b.iter(|| {
                black_box(run_centralized::<chorus_core::LocationSet!(P1, P2, P3), _, _>(
                    &circuit3,
                    inputs(&["P1", "P2", "P3"]),
                ))
            })
        });
    }
    group.finish();
}

fn bench_gmw_distributed(c: &mut Criterion) {
    let mut group = c.benchmark_group("gmw/distributed_and_chain_4");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);

    group.bench_function("2_parties", |b| {
        b.iter(|| {
            let (out, _) = run_gmw!(
                parties = [P1, P2],
                circuit = and_chain(&["P1", "P2"], 4),
                inputs = inputs(&["P1", "P2"])
            );
            black_box(out)
        })
    });
    group.bench_function("4_parties", |b| {
        b.iter(|| {
            let (out, _) = run_gmw!(
                parties = [P1, P2, P3, P4],
                circuit = and_chain(&["P1", "P2", "P3", "P4"], 4),
                inputs = inputs(&["P1", "P2", "P3", "P4"])
            );
            black_box(out)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_gmw_centralized, bench_gmw_distributed);
criterion_main!(benches);
