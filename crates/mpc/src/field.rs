//! Prime-field arithmetic.
//!
//! [`Fp<P>`] is the field of integers modulo the prime `P`. Two instances
//! are used throughout the case studies: [`FLOTTERY`] (the field of size
//! 999983 from the paper's Appendix C — "we used the finite field of size
//! 999983") and [`F61`] (the Mersenne prime 2⁶¹−1, used as the ambient
//! group for oblivious transfer).

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// An element of the prime field of order `P`.
///
/// The representation is always reduced: `0 <= value < P`.
///
/// # Examples
///
/// ```
/// use chorus_mpc::field::Fp;
///
/// type F7 = Fp<7>;
/// let a = F7::new(5);
/// let b = F7::new(4);
/// assert_eq!((a + b).value(), 2);
/// assert_eq!((a * b).value(), 6);
/// assert_eq!((a / b).value(), (a * b.inverse()).value());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Fp<const P: u64>(u64);

/// The DPrio lottery field (Appendix C).
pub type FLOTTERY = Fp<999_983>;

/// The Mersenne-prime field 2⁶¹ − 1.
pub type F61 = Fp<2_305_843_009_213_693_951>;

impl<const P: u64> Fp<P> {
    /// The additive identity.
    pub const ZERO: Self = Fp(0);
    /// The multiplicative identity.
    pub const ONE: Self = Fp(1 % P);

    /// Creates a field element, reducing modulo `P`.
    pub const fn new(value: u64) -> Self {
        Fp(value % P)
    }

    /// The canonical representative in `0..P`.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// The field order.
    pub const fn order() -> u64 {
        P
    }

    /// Samples a uniformly random element.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Fp(rng.gen_range(0..P))
    }

    /// Modular exponentiation by squaring.
    pub fn pow(self, mut exp: u64) -> Self {
        let mut base = self;
        let mut acc = Self::ONE;
        while exp > 0 {
            if exp & 1 == 1 {
                acc *= base;
            }
            base *= base;
            exp >>= 1;
        }
        acc
    }

    /// The multiplicative inverse, by Fermat's little theorem.
    ///
    /// # Panics
    ///
    /// Panics on zero, which has no inverse.
    pub fn inverse(self) -> Self {
        assert!(self.0 != 0, "zero has no multiplicative inverse");
        self.pow(P - 2)
    }
}

impl<const P: u64> fmt::Display for Fp<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl<const P: u64> Default for Fp<P> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<const P: u64> From<u64> for Fp<P> {
    fn from(value: u64) -> Self {
        Self::new(value)
    }
}

impl<const P: u64> Add for Fp<P> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        let (sum, overflow) = self.0.overflowing_add(rhs.0);
        if overflow {
            // Only possible when P > 2^63; handled via u128.
            Fp(((self.0 as u128 + rhs.0 as u128) % P as u128) as u64)
        } else {
            Fp(sum % P)
        }
    }
}

impl<const P: u64> AddAssign for Fp<P> {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<const P: u64> Sub for Fp<P> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        if self.0 >= rhs.0 {
            Fp(self.0 - rhs.0)
        } else {
            Fp(P - (rhs.0 - self.0))
        }
    }
}

impl<const P: u64> SubAssign for Fp<P> {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<const P: u64> Neg for Fp<P> {
    type Output = Self;
    fn neg(self) -> Self {
        Self::ZERO - self
    }
}

impl<const P: u64> Mul for Fp<P> {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Fp(((self.0 as u128 * rhs.0 as u128) % P as u128) as u64)
    }
}

impl<const P: u64> MulAssign for Fp<P> {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<const P: u64> Div for Fp<P> {
    type Output = Self;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[allow(clippy::suspicious_arithmetic_impl)] // division IS multiplication by the inverse
    fn div(self, rhs: Self) -> Self {
        self * rhs.inverse()
    }
}

impl<const P: u64> std::iter::Sum for Fp<P> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    type F = FLOTTERY;

    fn arb_f() -> impl Strategy<Value = F> {
        (0u64..F::order()).prop_map(F::new)
    }

    proptest! {
        #[test]
        fn addition_commutes(a in arb_f(), b in arb_f()) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn addition_associates(a in arb_f(), b in arb_f(), c in arb_f()) {
            prop_assert_eq!((a + b) + c, a + (b + c));
        }

        #[test]
        fn multiplication_distributes(a in arb_f(), b in arb_f(), c in arb_f()) {
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn subtraction_inverts_addition(a in arb_f(), b in arb_f()) {
            prop_assert_eq!(a + b - b, a);
        }

        #[test]
        fn negation_sums_to_zero(a in arb_f()) {
            prop_assert_eq!(a + (-a), F::ZERO);
        }

        #[test]
        fn nonzero_elements_have_inverses(a in (1u64..F::order()).prop_map(F::new)) {
            prop_assert_eq!(a * a.inverse(), F::ONE);
            prop_assert_eq!(a / a, F::ONE);
        }

        #[test]
        fn pow_matches_repeated_multiplication(a in arb_f(), e in 0u64..32) {
            let mut expected = F::ONE;
            for _ in 0..e {
                expected *= a;
            }
            prop_assert_eq!(a.pow(e), expected);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn mersenne_field_arithmetic_is_consistent(a in any::<u64>(), b in any::<u64>()) {
            let x = F61::new(a);
            let y = F61::new(b);
            prop_assert_eq!(x + y - y, x);
            prop_assert_eq!(x * y, y * x);
        }
    }

    #[test]
    fn constants_are_reduced() {
        assert_eq!(F::ZERO.value(), 0);
        assert_eq!(F::ONE.value(), 1);
        assert_eq!(Fp::<2>::new(5).value(), 1);
    }

    #[test]
    fn random_sampling_is_in_range() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(F::random(&mut rng).value() < F::order());
        }
    }

    #[test]
    fn serde_round_trip() {
        let a = F::new(123_456);
        let bytes = chorus_wire::to_bytes(&a).unwrap();
        let back: F = chorus_wire::from_bytes(&bytes).unwrap();
        assert_eq!(a, back);
    }
}
