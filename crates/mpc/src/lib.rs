//! Cryptographic substrate for the paper's case studies (§6, Appendices
//! A and C).
//!
//! Everything here is built from scratch on the standard library:
//!
//! * [`field`] — prime-field arithmetic, including the field of size
//!   999983 used by the DPrio lottery (Appendix C) and a 61-bit Mersenne
//!   field used as the group for oblivious transfer.
//! * [`sharing`] — XOR and additive secret sharing (Appendix A,
//!   "additive secret sharing").
//! * [`sha256`] — FIPS 180-4 SHA-256, used for the lottery's commitments.
//! * [`commit`] — salted hash commitments (`α = H(ρ, ψ)` in Appendix C).
//! * [`ot`] — 1-of-2 oblivious transfer (Appendix A). The paper's Haskell
//!   implementation uses RSA via `cryptonite`; we substitute a
//!   Bellare–Micali-style construction over a toy-sized prime group,
//!   which preserves the protocol's message structure (keys → encrypted
//!   pair → local decryption). **The parameters are toy-sized: this is a
//!   faithful protocol skeleton, not production cryptography.**
//! * [`circuit`] — boolean circuits for the GMW protocol, with a
//!   plaintext evaluator used as the correctness oracle in tests and a
//!   random-circuit generator used by benchmarks.

pub mod circuit;
pub mod commit;
pub mod field;
pub mod ot;
pub mod sha256;
pub mod sharing;

pub use circuit::Circuit;
pub use field::{Fp, F61, FLOTTERY};
pub use sha256::Sha256;
