//! Salted hash commitments (Appendix C, steps 2 and 4).
//!
//! "Each server computes and publishes the hash α = H(ρ, ψ) to serve as a
//! commitment"; later "all servers verify each other's commitment by
//! checking α = H(ρ, ψ)". The commitment prevents any server from
//! choosing its "random" value after seeing the others'.

use crate::sha256::Sha256;
use serde::{Deserialize, Serialize};

/// A binding, hiding (up to SHA-256) commitment to a `u64` value with a
/// `u64` salt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Commitment([u8; 32]);

impl Commitment {
    /// Commits to `value` with `salt`: `α = H(ρ, ψ)`.
    pub fn commit(value: u64, salt: u64) -> Self {
        let mut hasher = Sha256::new();
        hasher.update(&value.to_le_bytes());
        hasher.update(&salt.to_le_bytes());
        Commitment(hasher.finalize())
    }

    /// Checks an opened commitment.
    pub fn verify(&self, value: u64, salt: u64) -> bool {
        *self == Self::commit(value, salt)
    }

    /// Commits to an arbitrary byte string with a `u64` salt.
    ///
    /// The length is hashed first, so `commit_bytes(m, s)` can never
    /// collide with `commit(v, s)` (whose preimage is exactly 16
    /// bytes) or with a different-length message — used by the
    /// `chorus_patterns` commit-reveal round, which commits to
    /// wire-encoded values of any type.
    pub fn commit_bytes(message: &[u8], salt: u64) -> Self {
        let mut hasher = Sha256::new();
        hasher.update(&(message.len() as u64).to_le_bytes());
        hasher.update(message);
        hasher.update(&salt.to_le_bytes());
        Commitment(hasher.finalize())
    }

    /// Checks an opened byte-string commitment.
    pub fn verify_bytes(&self, message: &[u8], salt: u64) -> bool {
        *self == Self::commit_bytes(message, salt)
    }

    /// The raw digest.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn honest_openings_verify(value: u64, salt: u64) {
            prop_assert!(Commitment::commit(value, salt).verify(value, salt));
        }

        #[test]
        fn wrong_value_fails(value: u64, salt: u64, other: u64) {
            prop_assume!(value != other);
            prop_assert!(!Commitment::commit(value, salt).verify(other, salt));
        }

        #[test]
        fn wrong_salt_fails(value: u64, salt: u64, other: u64) {
            prop_assume!(salt != other);
            prop_assert!(!Commitment::commit(value, salt).verify(value, other));
        }

        #[test]
        fn honest_byte_openings_verify(message: String, salt: u64) {
            let message = message.as_bytes();
            prop_assert!(Commitment::commit_bytes(message, salt).verify_bytes(message, salt));
        }

        #[test]
        fn tampered_bytes_fail(message: String, salt: u64, flip: u64) {
            prop_assume!(!message.is_empty());
            let message = message.as_bytes();
            let mut tampered = message.to_vec();
            let at = (flip % tampered.len() as u64) as usize;
            tampered[at] ^= 1;
            prop_assert!(!Commitment::commit_bytes(message, salt).verify_bytes(&tampered, salt));
        }
    }

    #[test]
    fn byte_commitments_are_length_prefixed() {
        // "ab" + "c" must not collide with "a" + "bc": the length
        // prefix domain-separates the message from the salt stream.
        let a = Commitment::commit_bytes(b"abc", 0);
        let b = Commitment::commit_bytes(b"ab", 0);
        assert_ne!(a, b);
        let num = Commitment::commit(7, 9);
        let raw = Commitment::commit_bytes(&7u64.to_le_bytes(), 9);
        assert_ne!(num, raw, "u64 and byte commitments live in separate domains");
    }

    #[test]
    fn commitment_is_deterministic() {
        assert_eq!(Commitment::commit(7, 9), Commitment::commit(7, 9));
    }

    #[test]
    fn serde_round_trip() {
        let c = Commitment::commit(123, 456);
        let bytes = chorus_wire::to_bytes(&c).unwrap();
        let back: Commitment = chorus_wire::from_bytes(&bytes).unwrap();
        assert_eq!(c, back);
    }
}
