//! 1-of-2 oblivious transfer (Appendix A).
//!
//! "The sender inputs two secret bits 𝑏₁ and 𝑏₂, and the receiver inputs
//! a single secret select bit 𝑠. [...] the sender does not learn which of
//! 𝑏₁ or 𝑏₂ has been selected, and the receiver does not learn the
//! non-selected value."
//!
//! The paper's Haskell version (`ot2` in Fig. 9) uses RSA key pairs from
//! `cryptonite`; this substrate substitutes a Bellare–Micali-style
//! construction over the multiplicative group of [`F61`], preserving the
//! same three-message structure the choreography exercises:
//!
//! 1. receiver → sender: two public keys (only one with a known secret),
//! 2. sender → receiver: both bits encrypted under the respective keys,
//! 3. receiver decrypts the one it can.
//!
//! **Toy parameters**: a 61-bit group is trivially breakable; the point is
//! the protocol structure and message complexity, which is what the GMW
//! case study (and its experiments) measure.

use crate::field::F61;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Fixed group generator.
const G: F61 = F61::new(7);

/// A group element whose discrete log is (assumed) unknown to everyone:
/// derived from a hash-like constant. The receiver uses it to build the
/// second public key so that it cannot know both secrets.
const C: F61 = F61::new(0x1234_5678_9abc_def1);

/// The receiver's OT state: one real key pair and one "crippled" public
/// key, ordered by the selector bit.
#[derive(Debug, Clone)]
pub struct ReceiverKeys {
    secret: u64,
    selector: bool,
    /// Public keys, in fixed order: `pks.0` decrypts `b0` ... only one of
    /// which the receiver can actually use.
    pks: (F61, F61),
}

/// The two public keys the receiver publishes (message 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PublicKeys {
    /// Key under which the sender encrypts its first bit.
    pub pk0: u64,
    /// Key under which the sender encrypts its second bit.
    pub pk1: u64,
}

/// ElGamal encryptions of both bits (message 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ciphertexts {
    c0: (u64, u64),
    c1: (u64, u64),
}

impl ReceiverKeys {
    /// Generates the receiver's keys for `selector`.
    ///
    /// The receiver knows the secret for the key at position `selector`;
    /// the other position holds `C / pk`, whose secret would require a
    /// discrete log of `C` to know.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, selector: bool) -> Self {
        let secret = rng.gen_range(1..F61::order() - 1);
        let real = G.pow(secret);
        let crippled = C / real;
        let pks = if selector { (crippled, real) } else { (real, crippled) };
        ReceiverKeys { secret, selector, pks }
    }

    /// The public keys to publish to the sender.
    pub fn public(&self) -> PublicKeys {
        PublicKeys { pk0: self.pks.0.value(), pk1: self.pks.1.value() }
    }

    /// Decrypts the selected bit from the sender's ciphertexts.
    pub fn decrypt(&self, cts: &Ciphertexts) -> bool {
        let (c1, c2) = if self.selector { cts.c1 } else { cts.c0 };
        let c1 = F61::new(c1);
        let c2 = F61::new(c2);
        let mask = c1.pow(self.secret);
        let m = c2 / mask;
        m == G
    }
}

/// Encrypts the sender's two bits under the receiver's public keys.
///
/// Bit `b` is encoded as the group element `G` (for `true`) or `G²` (for
/// `false`) so decryption can distinguish them.
pub fn encrypt<R: Rng + ?Sized>(rng: &mut R, pks: PublicKeys, b0: bool, b1: bool) -> Ciphertexts {
    let encode = |b: bool| if b { G } else { G * G };
    let enc = |pk: F61, m: F61, rng: &mut R| {
        let r = rng.gen_range(1..F61::order() - 1);
        let c1 = G.pow(r);
        let c2 = m * pk.pow(r);
        (c1.value(), c2.value())
    };
    Ciphertexts {
        c0: enc(F61::new(pks.pk0), encode(b0), rng),
        c1: enc(F61::new(pks.pk1), encode(b1), rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #[test]
        fn receiver_gets_the_selected_bit(b0: bool, b1: bool, s: bool, seed: u64) {
            let mut rng = StdRng::seed_from_u64(seed);
            let keys = ReceiverKeys::generate(&mut rng, s);
            let cts = encrypt(&mut rng, keys.public(), b0, b1);
            let got = keys.decrypt(&cts);
            prop_assert_eq!(got, if s { b1 } else { b0 });
        }

        #[test]
        fn wrong_secret_does_not_decrypt_reliably(b0: bool, b1: bool, s: bool, seed: u64) {
            // The receiver cannot decrypt the *other* ciphertext with its
            // secret: flipping the selector after key generation yields
            // garbage (decodes to `false` except with negligible luck, and
            // crucially carries no dependable information).
            let mut rng = StdRng::seed_from_u64(seed);
            let keys = ReceiverKeys::generate(&mut rng, s);
            let cts = encrypt(&mut rng, keys.public(), b0, b1);
            let mut cheat = keys.clone();
            cheat.selector = !cheat.selector;
            let leaked = cheat.decrypt(&cts);
            let other = if s { b0 } else { b1 };
            // When the honest other-bit is `true`, the cheater decodes it
            // correctly only if G^(x * r') collides, which the group makes
            // overwhelmingly unlikely.
            if other {
                prop_assert!(!leaked, "cheating receiver decoded the unselected bit");
            }
        }
    }

    #[test]
    fn public_keys_multiply_to_the_public_constant() {
        // The sender can (and in hardened variants does) check that the
        // receiver formed its keys honestly: pk0 * pk1 == C.
        let mut rng = StdRng::seed_from_u64(3);
        for s in [false, true] {
            let keys = ReceiverKeys::generate(&mut rng, s);
            let pks = keys.public();
            assert_eq!(F61::new(pks.pk0) * F61::new(pks.pk1), C);
        }
    }

    #[test]
    fn messages_serde_round_trip() {
        let mut rng = StdRng::seed_from_u64(4);
        let keys = ReceiverKeys::generate(&mut rng, true);
        let pks = keys.public();
        let bytes = chorus_wire::to_bytes(&pks).unwrap();
        assert_eq!(chorus_wire::from_bytes::<PublicKeys>(&bytes).unwrap(), pks);
        let cts = encrypt(&mut rng, pks, true, false);
        let bytes = chorus_wire::to_bytes(&cts).unwrap();
        assert_eq!(chorus_wire::from_bytes::<Ciphertexts>(&bytes).unwrap(), cts);
    }
}
