//! Boolean circuits for the GMW protocol (Fig. 8).
//!
//! Mirrors the paper's `Circuit` GADT:
//!
//! ```haskell
//! data Circuit :: [LocTy] -> Type where
//!   InputWire :: Member p ps -> Circuit ps
//!   LitWire   :: Bool -> Circuit ps
//!   AndGate   :: Circuit ps -> Circuit ps -> Circuit ps
//!   XorGate   :: Circuit ps -> Circuit ps -> Circuit ps
//! ```
//!
//! In Rust the input's owner is a location *name* resolved at run time;
//! the GMW choreography checks that every named party is in its census.

use rand::Rng;
use std::collections::BTreeMap;
use std::fmt;

/// A boolean circuit over the inputs of named parties.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Circuit {
    /// A secret input supplied by the named party. Each occurrence
    /// consumes the party's next unused input value.
    Input {
        /// The party providing the input.
        party: &'static str,
        /// Index into that party's input vector.
        index: usize,
    },
    /// A public constant.
    Lit(bool),
    /// Logical AND of two sub-circuits (requires OT under GMW).
    And(Box<Circuit>, Box<Circuit>),
    /// Logical XOR of two sub-circuits (free under GMW).
    Xor(Box<Circuit>, Box<Circuit>),
}

impl Circuit {
    /// An input wire for `party`'s `index`-th input.
    pub fn input(party: &'static str, index: usize) -> Self {
        Circuit::Input { party, index }
    }

    /// A literal wire.
    pub fn lit(value: bool) -> Self {
        Circuit::Lit(value)
    }

    /// Conjunction.
    pub fn and(self, rhs: Circuit) -> Self {
        Circuit::And(Box::new(self), Box::new(rhs))
    }

    /// Exclusive or.
    pub fn xor(self, rhs: Circuit) -> Self {
        Circuit::Xor(Box::new(self), Box::new(rhs))
    }

    /// Negation, encoded as `x ⊕ 1`.
    #[allow(clippy::should_implement_trait)] // mirrors `and`/`or`/`xor` builder names
    pub fn not(self) -> Self {
        self.xor(Circuit::Lit(true))
    }

    /// Disjunction, encoded as `(x ⊕ y) ⊕ (x ∧ y)`.
    pub fn or(self, rhs: Circuit) -> Self {
        let x = self.clone();
        let y = rhs.clone();
        self.xor(rhs).xor(x.and(y))
    }

    /// Evaluates the circuit in the clear — the correctness oracle for
    /// the GMW choreography.
    ///
    /// # Panics
    ///
    /// Panics if an input wire names a party or index missing from
    /// `inputs`.
    pub fn eval_plain(&self, inputs: &BTreeMap<&str, Vec<bool>>) -> bool {
        match self {
            Circuit::Input { party, index } => *inputs
                .get(party)
                .unwrap_or_else(|| panic!("no inputs for party {party}"))
                .get(*index)
                .unwrap_or_else(|| panic!("party {party} has no input #{index}")),
            Circuit::Lit(b) => *b,
            Circuit::And(l, r) => l.eval_plain(inputs) && r.eval_plain(inputs),
            Circuit::Xor(l, r) => l.eval_plain(inputs) ^ r.eval_plain(inputs),
        }
    }

    /// Counts `(inputs, literals, and_gates, xor_gates)`.
    pub fn gate_counts(&self) -> GateCounts {
        let mut counts = GateCounts::default();
        self.count_into(&mut counts);
        counts
    }

    fn count_into(&self, counts: &mut GateCounts) {
        match self {
            Circuit::Input { .. } => counts.inputs += 1,
            Circuit::Lit(_) => counts.literals += 1,
            Circuit::And(l, r) => {
                counts.and_gates += 1;
                l.count_into(counts);
                r.count_into(counts);
            }
            Circuit::Xor(l, r) => {
                counts.xor_gates += 1;
                l.count_into(counts);
                r.count_into(counts);
            }
        }
    }

    /// The number of inputs each party must supply: `party -> count`,
    /// where `count` is one past the largest index used.
    pub fn required_inputs(&self) -> BTreeMap<&'static str, usize> {
        let mut required = BTreeMap::new();
        self.collect_inputs(&mut required);
        required
    }

    fn collect_inputs(&self, required: &mut BTreeMap<&'static str, usize>) {
        match self {
            Circuit::Input { party, index } => {
                let entry = required.entry(*party).or_insert(0);
                *entry = (*entry).max(index + 1);
            }
            Circuit::Lit(_) => {}
            Circuit::And(l, r) | Circuit::Xor(l, r) => {
                l.collect_inputs(required);
                r.collect_inputs(required);
            }
        }
    }

    /// Generates a random circuit with `gates` internal gates over the
    /// given parties, one input wire per party. Used by benchmarks and
    /// property tests.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, parties: &[&'static str], gates: usize) -> Self {
        assert!(!parties.is_empty(), "need at least one party");
        let mut pool: Vec<Circuit> = parties.iter().map(|p| Circuit::input(p, 0)).collect();
        pool.push(Circuit::lit(rng.gen()));
        for _ in 0..gates {
            let a = pool[rng.gen_range(0..pool.len())].clone();
            let b = pool[rng.gen_range(0..pool.len())].clone();
            let gate = if rng.gen() { a.and(b) } else { a.xor(b) };
            pool.push(gate);
        }
        pool.pop().expect("pool is nonempty")
    }
}

/// Gate statistics for a [`Circuit`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GateCounts {
    /// Input wires.
    pub inputs: usize,
    /// Literal wires.
    pub literals: usize,
    /// AND gates (each costs n·(n−1) oblivious transfers under GMW).
    pub and_gates: usize,
    /// XOR gates (free under GMW).
    pub xor_gates: usize,
}

impl fmt::Display for GateCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} inputs, {} literals, {} AND, {} XOR",
            self.inputs, self.literals, self.and_gates, self.xor_gates
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn inputs(pairs: &[(&'static str, &[bool])]) -> BTreeMap<&'static str, Vec<bool>> {
        pairs.iter().map(|(p, v)| (*p, v.to_vec())).collect()
    }

    #[test]
    fn gates_evaluate_truthfully() {
        let x = || Circuit::input("a", 0);
        let y = || Circuit::input("b", 0);
        for xa in [false, true] {
            for yb in [false, true] {
                let env = inputs(&[("a", &[xa]), ("b", &[yb])]);
                assert_eq!(x().and(y()).eval_plain(&env), xa && yb);
                assert_eq!(x().xor(y()).eval_plain(&env), xa ^ yb);
                assert_eq!(x().or(y()).eval_plain(&env), xa || yb);
                assert_eq!(x().not().eval_plain(&env), !xa);
            }
        }
    }

    #[test]
    fn multiple_inputs_per_party() {
        let c = Circuit::input("a", 0).xor(Circuit::input("a", 1));
        let env = inputs(&[("a", &[true, false])]);
        assert!(c.eval_plain(&env));
        assert_eq!(c.required_inputs()["a"], 2);
    }

    #[test]
    fn gate_counts_are_accurate() {
        let c = Circuit::input("a", 0).and(Circuit::input("b", 0)).xor(Circuit::lit(true));
        let counts = c.gate_counts();
        assert_eq!(counts, GateCounts { inputs: 2, literals: 1, and_gates: 1, xor_gates: 1 });
        assert!(!counts.to_string().is_empty());
    }

    #[test]
    #[should_panic(expected = "no inputs for party")]
    fn missing_party_panics() {
        Circuit::input("ghost", 0).eval_plain(&BTreeMap::new());
    }

    #[test]
    fn random_circuits_are_well_formed() {
        let mut rng = StdRng::seed_from_u64(11);
        let parties = ["p1", "p2", "p3"];
        for gates in [0, 1, 5, 50] {
            let c = Circuit::random(&mut rng, &parties, gates);
            let required = c.required_inputs();
            let env: BTreeMap<&str, Vec<bool>> =
                required.iter().map(|(p, n)| (*p, vec![true; *n])).collect();
            let _ = c.eval_plain(&env); // must not panic
        }
    }
}
