//! Additive secret sharing (Appendix A).
//!
//! "A secret bit 𝑥 can be secret shared by generating 𝑛 random shares
//! 𝑠₁…𝑠ₙ such that 𝑥 = Σ 𝑠ᵢ. If 𝑛−1 of the shares are generated uniformly
//! and independently randomly, and the final share is chosen to satisfy
//! the property above, then the shares can be safely distributed."
//!
//! Boolean sharing works in the field of booleans (XOR); field sharing
//! works in any [`crate::field::Fp`].

use crate::field::Fp;
use rand::Rng;

/// Shares a boolean into `n` XOR-shares.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn share_bool<R: Rng + ?Sized>(rng: &mut R, secret: bool, n: usize) -> Vec<bool> {
    assert!(n > 0, "cannot share among zero parties");
    let mut shares: Vec<bool> = (0..n - 1).map(|_| rng.gen()).collect();
    let free_xor = shares.iter().fold(false, |a, b| a ^ b);
    shares.push(secret ^ free_xor);
    shares
}

/// Reconstructs a boolean from its XOR-shares.
pub fn reveal_bool(shares: &[bool]) -> bool {
    shares.iter().fold(false, |a, b| a ^ b)
}

/// Shares a field element into `n` additive shares.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn share_field<const P: u64, R: Rng + ?Sized>(
    rng: &mut R,
    secret: Fp<P>,
    n: usize,
) -> Vec<Fp<P>> {
    assert!(n > 0, "cannot share among zero parties");
    let mut shares: Vec<Fp<P>> = (0..n - 1).map(|_| Fp::random(rng)).collect();
    let free_sum: Fp<P> = shares.iter().copied().sum();
    shares.push(secret - free_sum);
    shares
}

/// Reconstructs a field element from its additive shares.
pub fn reveal_field<const P: u64>(shares: &[Fp<P>]) -> Fp<P> {
    shares.iter().copied().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::FLOTTERY;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #[test]
        fn bool_shares_reconstruct(secret: bool, n in 1usize..16, seed: u64) {
            let mut rng = StdRng::seed_from_u64(seed);
            let shares = share_bool(&mut rng, secret, n);
            prop_assert_eq!(shares.len(), n);
            prop_assert_eq!(reveal_bool(&shares), secret);
        }

        #[test]
        fn field_shares_reconstruct(value in 0u64..FLOTTERY::order(), n in 1usize..16, seed: u64) {
            let mut rng = StdRng::seed_from_u64(seed);
            let secret = FLOTTERY::new(value);
            let shares = share_field(&mut rng, secret, n);
            prop_assert_eq!(shares.len(), n);
            prop_assert_eq!(reveal_field(&shares), secret);
        }

        #[test]
        fn shares_are_additively_homomorphic(
            x in 0u64..FLOTTERY::order(),
            y in 0u64..FLOTTERY::order(),
            n in 1usize..8,
            seed: u64,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let xs = share_field(&mut rng, FLOTTERY::new(x), n);
            let ys = share_field(&mut rng, FLOTTERY::new(y), n);
            let sums: Vec<FLOTTERY> = xs.iter().zip(&ys).map(|(a, b)| *a + *b).collect();
            prop_assert_eq!(reveal_field(&sums), FLOTTERY::new(x) + FLOTTERY::new(y));
        }

        #[test]
        fn bool_shares_are_xor_homomorphic(x: bool, y: bool, n in 1usize..8, seed: u64) {
            let mut rng = StdRng::seed_from_u64(seed);
            let xs = share_bool(&mut rng, x, n);
            let ys = share_bool(&mut rng, y, n);
            let xor: Vec<bool> = xs.iter().zip(&ys).map(|(a, b)| a ^ b).collect();
            prop_assert_eq!(reveal_bool(&xor), x ^ y);
        }
    }

    #[test]
    fn single_party_share_is_the_secret() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(share_bool(&mut rng, true, 1), vec![true]);
        assert_eq!(share_field(&mut rng, FLOTTERY::new(42), 1), vec![FLOTTERY::new(42)]);
    }

    #[test]
    #[should_panic(expected = "zero parties")]
    fn sharing_among_zero_parties_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        share_bool(&mut rng, true, 0);
    }

    #[test]
    fn individual_shares_look_uniform() {
        // Sanity check (not a security proof): with many trials, the first
        // share of a fixed secret should be true about half the time.
        let mut rng = StdRng::seed_from_u64(1);
        let trials = 2000;
        let mut trues = 0;
        for _ in 0..trials {
            if share_bool(&mut rng, true, 2)[0] {
                trues += 1;
            }
        }
        assert!((800..1200).contains(&trues), "got {trues} trues out of {trials}");
    }
}
