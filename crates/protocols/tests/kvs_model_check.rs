//! Model-based property test: random request sequences against the
//! replicated KVS (Fig. 2) must behave exactly like a plain map, and
//! replicas must stay convergent — resynching precisely when corruption
//! was injected.

use chorus_core::{Faceted, Runner};
use chorus_protocols::kvs_backup::{KvsCensus, ReplicatedKvs, Servers};
use chorus_protocols::roles::{Backup1, Backup2, Backup3};
use chorus_protocols::store::{Request, Response, SharedStore};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::marker::PhantomData;

type Backups = chorus_core::LocationSet!(Backup1, Backup2, Backup3);
type Census = KvsCensus<Backups>;

#[derive(Debug, Clone)]
enum Op {
    Put(u8, u8),
    Get(u8),
    CorruptThenPut(u8, u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::Put(k % 8, v)),
        any::<u8>().prop_map(|k| Op::Get(k % 8)),
        (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::CorruptThenPut(k % 8, v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn kvs_behaves_like_a_map_and_replicas_converge(ops in prop::collection::vec(arb_op(), 1..24)) {
        let runner: Runner<Census> = Runner::new();
        let mut stores = BTreeMap::new();
        for name in ["Primary", "Backup1", "Backup2", "Backup3"] {
            stores.insert(name.to_string(), SharedStore::new());
        }
        let states: Faceted<SharedStore, Servers<Backups>> = runner.faceted(
            stores.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
        );
        let mut model: BTreeMap<String, String> = BTreeMap::new();

        for op in ops {
            let (request, corrupted) = match op {
                Op::Put(k, v) => (Request::Put(format!("k{k}"), format!("v{v}")), false),
                Op::Get(k) => (Request::Get(format!("k{k}")), false),
                Op::CorruptThenPut(k, v) => {
                    stores["Backup2"].corrupt_next_put();
                    (Request::Put(format!("k{k}"), format!("v{v}")), true)
                }
            };
            let outcome = runner.run(ReplicatedKvs::<Backups, _, _, _> {
                request: runner.local(request.clone()),
                states: states.clone(),
                phantom: PhantomData,
            });
            let response = runner.unwrap_located(outcome.response);
            let resynched = runner.unwrap_located(outcome.resynched);

            // The response matches a plain map.
            match request {
                Request::Put(k, v) => {
                    let expected = match model.insert(k, v) {
                        Some(prev) => Response::Found(prev),
                        None => Response::NotFound,
                    };
                    prop_assert_eq!(response, expected);
                    // Resynch fires exactly when corruption was injected.
                    prop_assert_eq!(resynched, corrupted);
                }
                Request::Get(k) => {
                    let expected = match model.get(&k) {
                        Some(v) => Response::Found(v.clone()),
                        None => Response::NotFound,
                    };
                    prop_assert_eq!(response, expected);
                    prop_assert!(!resynched);
                }
                Request::Stop => unreachable!(),
            }

            // Replicas converge after every request.
            let reference = stores["Primary"].snapshot();
            for (name, store) in &stores {
                prop_assert_eq!(
                    store.snapshot(),
                    reference.clone(),
                    "replica {} diverged",
                    name
                );
            }
            prop_assert_eq!(reference, model.clone(), "primary diverged from the model");
        }
    }
}
