//! The GMW secure multiparty computation protocol (§6, Appendix A,
//! Figs. 8–9), census-polymorphic over the set of parties.
//!
//! The parties jointly evaluate a boolean [`Circuit`] over their private
//! inputs without revealing them:
//!
//! * **Input wires** are XOR-secret-shared by their owner and scattered
//!   to everyone ([`Faceted`] shares).
//! * **XOR gates** are free: each party XORs its shares locally.
//! * **AND gates** run one 1-of-2 oblivious transfer per ordered pair of
//!   distinct parties — "we must nest FanOut, FanIn, and conclave to call
//!   the oblivious transfer sub-choreography (which has an explicit
//!   census of only two parties) once for every ordered pair".
//! * **Reveal** gathers all shares everywhere and XORs them.
//!
//! The two-party OT sub-choreography (`OtPair`) has a census of exactly
//! `{sender, receiver}`: the type system rejects any third party's
//! involvement, which is the paper's point about embedding pairwise
//! sub-protocols in arbitrarily large censuses.

use chorus_core::{
    ChoreoOp, Choreography, ChoreographyLocation, Faceted, Located, LocationSet,
    LocationSetFoldable, LocationSetFolder, Member, MultiplyLocated, Quire, Subset, SubsetCons,
    SubsetNil,
};
use chorus_mpc::circuit::Circuit;
use chorus_mpc::ot;
use rand::{thread_rng, Rng};
use std::collections::BTreeMap;
use std::marker::PhantomData;

/// The GMW choreography: evaluates `circuit` over the parties' private
/// `inputs` and reveals the result to everyone.
///
/// `P` is the full (census-polymorphic) party set; `PRefl` and `PFold`
/// are inferred proof indices (`P ⊆ P` and the fold witness over `P`).
pub struct Gmw<'a, P: LocationSet, PRefl, PFold> {
    /// The publicly known circuit to evaluate.
    pub circuit: &'a Circuit,
    /// Each party's private input bits (facet = that party's inputs).
    pub inputs: &'a Faceted<Vec<bool>, P>,
    /// Inferred proof indices; pass `PhantomData`.
    pub phantom: PhantomData<(PRefl, PFold)>,
}

impl<P, PRefl, PFold> Choreography<bool> for Gmw<'_, P, PRefl, PFold>
where
    P: LocationSet + Subset<P, PRefl> + LocationSetFoldable<P, P, PFold>,
{
    type L = P;

    fn run(self, op: &impl ChoreoOp<Self::L>) -> bool {
        let names = P::names();
        assert!(!names.is_empty(), "GMW requires at least one party");
        for (party, _) in self.circuit.required_inputs() {
            assert!(
                names.contains(&party),
                "circuit names input party {party} outside the census {names:?}"
            );
        }
        let shares = eval_gate::<P, _, PRefl, PFold>(op, self.circuit, self.inputs);
        reveal::<P, _, PRefl, PFold>(op, &shares)
    }
}

/// Recursively evaluates a circuit to secret shares of its output
/// (Fig. 8's `gmw`).
fn eval_gate<P, Op, PRefl, PFold>(
    op: &Op,
    circuit: &Circuit,
    inputs: &Faceted<Vec<bool>, P>,
) -> Faceted<bool, P>
where
    Op: ChoreoOp<P>,
    P: LocationSet + Subset<P, PRefl> + LocationSetFoldable<P, P, PFold>,
{
    match circuit {
        Circuit::Input { party, index } => {
            let folder = ShareInput::<'_, Op, P, PRefl, PFold> {
                op,
                party,
                index: *index,
                inputs,
                phantom: PhantomData,
            };
            P::foldr(&folder, None).unwrap_or_else(|| {
                panic!("input party {party} not found in census {:?}", P::names())
            })
        }
        Circuit::Lit(b) => {
            // Fig. 8's `chooseShare`: the first party's share is the
            // literal; everyone else holds `false`.
            let b = *b;
            let first = P::names()[0];
            op.parallel_named(P::new(), move |name| if name == first { b } else { false })
        }
        Circuit::Xor(l, r) => {
            let ls = eval_gate::<P, Op, PRefl, PFold>(op, l, inputs);
            let rs = eval_gate::<P, Op, PRefl, PFold>(op, r, inputs);
            // XOR is free: shares combine locally.
            op.map_facets2(P::new(), &ls, &rs, |a, b| a ^ b)
        }
        Circuit::And(l, r) => {
            let u = eval_gate::<P, Op, PRefl, PFold>(op, l, inputs);
            let v = eval_gate::<P, Op, PRefl, PFold>(op, r, inputs);
            f_and::<P, Op, PRefl, PFold>(op, &u, &v)
        }
    }
}

/// Reveals secret shares to the entire census (Fig. 9's `reveal`):
/// gather everywhere, XOR locally.
fn reveal<P, Op, PRefl, PFold>(op: &Op, shares: &Faceted<bool, P>) -> bool
where
    Op: ChoreoOp<P>,
    P: LocationSet + Subset<P, PRefl> + LocationSetFoldable<P, P, PFold>,
{
    let gathered: MultiplyLocated<Quire<bool, P>, P> = op.gather(P::new(), P::new(), shares);
    let quire = op.naked(gathered);
    quire.values().fold(false, |acc, b| acc ^ *b)
}

/// Fig. 9's `fAnd`: multiply secret-shared bits `u` and `v` via pairwise
/// oblivious transfer.
fn f_and<P, Op, PRefl, PFold>(
    op: &Op,
    u: &Faceted<bool, P>,
    v: &Faceted<bool, P>,
) -> Faceted<bool, P>
where
    Op: ChoreoOp<P>,
    P: LocationSet + Subset<P, PRefl> + LocationSetFoldable<P, P, PFold>,
{
    // Every party i draws a random mask r_ij for each counterpart j
    // (Fig. 9's `a_j_s`).
    let masks: Faceted<Quire<bool, P>, P> = op.parallel(P::new(), || {
        let mut rng = thread_rng();
        Quire::build(|_| rng.gen())
    });

    // For every receiver j, collect m_ij = r_ij ⊕ (u_i ∧ v_j) from every
    // sender i via OT, and XOR them into b_j (Fig. 9's `bs` fanOut).
    let b: Faceted<bool, P> =
        op.fanout(P::new(), OtFanOut::<'_, P, PFold> { u, v, masks: &masks, phantom: PhantomData });

    // share_i = (u_i ∧ v_i) ⊕ b_i ⊕ (⊕_{j≠i} r_ij)  (Fig. 9's
    // `computeShare`).
    op.fanout(P::new(), CombineShares::<'_, P> { u, v, b: &b, masks: &masks })
}

/// Folder that locates the input's owner in the census and has it share
/// its bit: generate an XOR-share quire locally, then scatter it.
struct ShareInput<'a, Op, P: LocationSet, PRefl, PFold> {
    op: &'a Op,
    party: &'a str,
    index: usize,
    inputs: &'a Faceted<Vec<bool>, P>,
    phantom: PhantomData<(PRefl, PFold)>,
}

impl<Op, P, PRefl, PFold> LocationSetFolder<Option<Faceted<bool, P>>>
    for ShareInput<'_, Op, P, PRefl, PFold>
where
    Op: ChoreoOp<P>,
    P: LocationSet + Subset<P, PRefl> + LocationSetFoldable<P, P, PFold>,
{
    type L = P;
    type QS = P;

    fn f<Q: ChoreographyLocation, QMemberL, QMemberQS>(
        &self,
        acc: Option<Faceted<bool, P>>,
    ) -> Option<Faceted<bool, P>>
    where
        Q: Member<Self::L, QMemberL>,
        Q: Member<Self::QS, QMemberQS>,
    {
        if Q::NAME != self.party {
            return acc;
        }
        let index = self.index;
        let share_quire: Located<Quire<bool, P>, Q> =
            self.op.locally::<Quire<bool, P>, Q, QMemberL>(Q::new(), |un| {
                let bit = un.unwrap_faceted_ref::<Vec<bool>, P, QMemberL>(self.inputs)[index];
                xor_share_quire::<P>(bit)
            });
        Some(self.op.scatter::<Q, bool, P, QMemberL, PRefl, PFold>(
            Q::new(),
            P::new(),
            &share_quire,
        ))
    }
}

/// Builds a quire of random bits whose XOR equals `bit` (Fig. 9's
/// `genShares`).
fn xor_share_quire<P: LocationSet>(bit: bool) -> Quire<bool, P> {
    let mut rng = thread_rng();
    let mut map: BTreeMap<String, bool> =
        P::names().into_iter().map(|n| (n.to_string(), rng.gen())).collect();
    let total = map.values().fold(false, |a, b| a ^ b);
    if total != bit {
        let first = P::names()[0];
        if let Some(entry) = map.get_mut(first) {
            *entry = !*entry;
        }
    }
    Quire::from_map(map).expect("share quire is keyed by the census")
}

/// Fan-out over receivers j: each j collects its masked products from
/// every sender via the inner fan-in, then XORs them.
struct OtFanOut<'a, P: LocationSet, PFold> {
    u: &'a Faceted<bool, P>,
    v: &'a Faceted<bool, P>,
    masks: &'a Faceted<Quire<bool, P>, P>,
    phantom: PhantomData<PFold>,
}

impl<P, PFold> chorus_core::FanOutChoreography<bool> for OtFanOut<'_, P, PFold>
where
    P: LocationSet + LocationSetFoldable<P, P, PFold>,
{
    type L = P;
    type QS = P;

    fn run<Qj: ChoreographyLocation, QSSubsetL, QjMemberL, QjMemberQS>(
        &self,
        op: &impl ChoreoOp<Self::L>,
    ) -> Located<bool, Qj>
    where
        Self::QS: Subset<Self::L, QSSubsetL>,
        Qj: Member<Self::L, QjMemberL>,
        Qj: Member<Self::QS, QjMemberQS>,
    {
        let fan_in = OtFanIn::<'_, P, Qj, QjMemberL> {
            u: self.u,
            v: self.v,
            masks: self.masks,
            phantom: PhantomData,
        };
        let gathered: MultiplyLocated<Quire<bool, P>, chorus_core::LocationSet!(Qj)> = op
            .fanin::<bool, P, chorus_core::LocationSet!(Qj), _, QSSubsetL, SubsetCons<QjMemberL, SubsetNil>, PFold>(
                P::new(),
                fan_in,
            );
        op.locally::<bool, Qj, QjMemberL>(Qj::new(), |un| {
            un.unwrap_ref::<Quire<bool, P>, chorus_core::LocationSet!(Qj), chorus_core::Here>(
                &gathered,
            )
            .values()
            .fold(false, |a, b| a ^ *b)
        })
    }
}

/// Fan-in over senders i with fixed receiver j: for i == j contribute
/// `false`; otherwise run the two-party OT conclave.
struct OtFanIn<'a, P: LocationSet, Qj, QjMemberL> {
    u: &'a Faceted<bool, P>,
    v: &'a Faceted<bool, P>,
    masks: &'a Faceted<Quire<bool, P>, P>,
    phantom: PhantomData<(Qj, QjMemberL)>,
}

impl<P, Qj, QjMemberL> chorus_core::FanInChoreography<bool> for OtFanIn<'_, P, Qj, QjMemberL>
where
    P: LocationSet,
    Qj: ChoreographyLocation + Member<P, QjMemberL>,
{
    type L = P;
    type QS = P;
    type RS = chorus_core::LocationSet!(Qj);

    fn run<Qi: ChoreographyLocation, QSSubsetL, RSSubsetL, QiMemberL, QiMemberQS>(
        &self,
        op: &impl ChoreoOp<Self::L>,
    ) -> MultiplyLocated<bool, Self::RS>
    where
        Self::QS: Subset<Self::L, QSSubsetL>,
        Self::RS: Subset<Self::L, RSSubsetL>,
        Qi: Member<Self::L, QiMemberL>,
        Qi: Member<Self::QS, QiMemberQS>,
    {
        if Qi::NAME == Qj::NAME {
            // The self-pair contributes a constant `false` share.
            return op.locally(Qj::new(), |_| false);
        }
        // Two-party conclave: only the sender and receiver participate.
        let result: MultiplyLocated<Located<bool, Qj>, chorus_core::LocationSet!(Qi, Qj)> = op
            .conclave::<Located<bool, Qj>, chorus_core::LocationSet!(Qi, Qj), _, SubsetCons<QiMemberL, SubsetCons<QjMemberL, SubsetNil>>>(
                OtPair::<'_, P, Qi, Qj, QiMemberL, QjMemberL> {
                    u: self.u,
                    v: self.v,
                    masks: self.masks,
                    phantom: PhantomData,
                },
            );
        result.flatten()
    }
}

/// The two-party 1-of-2 OT sub-choreography (Fig. 9's `ot2`): census is
/// exactly `{Sender, Receiver}`. The receiver selects with its `v` share;
/// the sender offers `(r, r ⊕ u)`, so the receiver learns
/// `r ⊕ (u ∧ v)` and nothing else.
struct OtPair<'a, P: LocationSet, S, R, SInP, RInP> {
    u: &'a Faceted<bool, P>,
    v: &'a Faceted<bool, P>,
    masks: &'a Faceted<Quire<bool, P>, P>,
    phantom: PhantomData<(S, R, SInP, RInP)>,
}

impl<P, S, R, SInP, RInP> Choreography<Located<bool, R>> for OtPair<'_, P, S, R, SInP, RInP>
where
    P: LocationSet,
    S: ChoreographyLocation + Member<P, SInP>,
    R: ChoreographyLocation + Member<P, RInP>,
{
    type L = chorus_core::LocationSet!(S, R);

    fn run(self, op: &impl ChoreoOp<Self::L>) -> Located<bool, R> {
        // Receiver: keys with selector v_j.
        let keys = op.locally(R::new(), |un| {
            let v_j = *un.unwrap_faceted_ref::<bool, P, RInP>(self.v);
            ot::ReceiverKeys::generate(&mut thread_rng(), v_j)
        });
        let pks = op.locally(R::new(), |un| {
            un.unwrap_ref::<ot::ReceiverKeys, chorus_core::LocationSet!(R), chorus_core::Here>(
                &keys,
            )
            .public()
        });
        let pks_at_sender = op.comm(R::new(), S::new(), &pks);
        // Sender: encrypt (r, r ⊕ u) under the receiver's keys.
        let cts = op.locally(S::new(), |un| {
            let u_i = *un.unwrap_faceted_ref::<bool, P, SInP>(self.u);
            let r_ij = *un
                .unwrap_faceted_ref::<Quire<bool, P>, P, SInP>(self.masks)
                .get_by_name(R::NAME)
                .expect("mask quire covers the census");
            let pks = *un
                .unwrap_ref::<ot::PublicKeys, chorus_core::LocationSet!(S), chorus_core::Here>(
                    &pks_at_sender,
                );
            ot::encrypt(&mut thread_rng(), pks, r_ij, r_ij ^ u_i)
        });
        let cts_at_receiver = op.comm(S::new(), R::new(), &cts);
        // Receiver: decrypt the selected masked product.
        op.locally(R::new(), |un| {
            un.unwrap_ref::<ot::ReceiverKeys, chorus_core::LocationSet!(R), chorus_core::Here>(
                &keys,
            )
            .decrypt(
                un.unwrap_ref::<ot::Ciphertexts, chorus_core::LocationSet!(R), chorus_core::Here>(
                    &cts_at_receiver,
                ),
            )
        })
    }
}

/// Final per-party combination of an AND gate's intermediate values.
struct CombineShares<'a, P: LocationSet> {
    u: &'a Faceted<bool, P>,
    v: &'a Faceted<bool, P>,
    b: &'a Faceted<bool, P>,
    masks: &'a Faceted<Quire<bool, P>, P>,
}

impl<P> chorus_core::FanOutChoreography<bool> for CombineShares<'_, P>
where
    P: LocationSet,
{
    type L = P;
    type QS = P;

    fn run<Q: ChoreographyLocation, QSSubsetL, QMemberL, QMemberQS>(
        &self,
        op: &impl ChoreoOp<Self::L>,
    ) -> Located<bool, Q>
    where
        Self::QS: Subset<Self::L, QSSubsetL>,
        Q: Member<Self::L, QMemberL>,
        Q: Member<Self::QS, QMemberQS>,
    {
        op.locally::<bool, Q, QMemberL>(Q::new(), |un| {
            let u_i = *un.unwrap_faceted_ref::<bool, P, QMemberL>(self.u);
            let v_i = *un.unwrap_faceted_ref::<bool, P, QMemberL>(self.v);
            let b_i = *un.unwrap_faceted_ref::<bool, P, QMemberL>(self.b);
            let masks_i = un.unwrap_faceted_ref::<Quire<bool, P>, P, QMemberL>(self.masks);
            let r_sum = masks_i
                .iter()
                .filter(|(name, _)| *name != Q::NAME)
                .fold(false, |acc, (_, r)| acc ^ *r);
            (u_i & v_i) ^ b_i ^ r_sum
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roles::{P1, P2, P3};
    use chorus_core::Runner;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    type Two = chorus_core::LocationSet!(P1, P2);
    type Three = chorus_core::LocationSet!(P1, P2, P3);

    fn run_gmw<P, PRefl, PFold>(circuit: &Circuit, inputs: BTreeMap<String, Vec<bool>>) -> bool
    where
        P: LocationSet + Subset<P, PRefl> + LocationSetFoldable<P, P, PFold>,
    {
        let runner: Runner<P> = Runner::new();
        let faceted = runner.faceted(inputs);
        runner.run(Gmw::<P, PRefl, PFold> { circuit, inputs: &faceted, phantom: PhantomData })
    }

    fn two_party_inputs(a: bool, b: bool) -> BTreeMap<String, Vec<bool>> {
        let mut m = BTreeMap::new();
        m.insert("P1".to_string(), vec![a]);
        m.insert("P2".to_string(), vec![b]);
        m
    }

    #[test]
    fn and_gate_truth_table() {
        for a in [false, true] {
            for b in [false, true] {
                let circuit = Circuit::input("P1", 0).and(Circuit::input("P2", 0));
                let got = run_gmw::<Two, _, _>(&circuit, two_party_inputs(a, b));
                assert_eq!(got, a && b, "AND({a}, {b})");
            }
        }
    }

    #[test]
    fn xor_gate_truth_table() {
        for a in [false, true] {
            for b in [false, true] {
                let circuit = Circuit::input("P1", 0).xor(Circuit::input("P2", 0));
                let got = run_gmw::<Two, _, _>(&circuit, two_party_inputs(a, b));
                assert_eq!(got, a ^ b, "XOR({a}, {b})");
            }
        }
    }

    #[test]
    fn or_and_not_compose() {
        for a in [false, true] {
            for b in [false, true] {
                let circuit = Circuit::input("P1", 0).or(Circuit::input("P2", 0)).not();
                let got = run_gmw::<Two, _, _>(&circuit, two_party_inputs(a, b));
                assert_eq!(got, !(a || b), "NOR({a}, {b})");
            }
        }
    }

    #[test]
    fn literals_evaluate() {
        let circuit = Circuit::lit(true).and(Circuit::input("P1", 0));
        assert!(run_gmw::<Two, _, _>(&circuit, two_party_inputs(true, false)));
        assert!(!run_gmw::<Two, _, _>(&circuit, two_party_inputs(false, true)));
    }

    #[test]
    fn three_party_majority() {
        // majority(a, b, c) = ab ⊕ ac ⊕ bc   (over GF(2))
        let a = || Circuit::input("P1", 0);
        let b = || Circuit::input("P2", 0);
        let c = || Circuit::input("P3", 0);
        let majority = a().and(b()).xor(a().and(c())).xor(b().and(c()));
        for bits in 0..8u8 {
            let (x, y, z) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0);
            let mut inputs = BTreeMap::new();
            inputs.insert("P1".to_string(), vec![x]);
            inputs.insert("P2".to_string(), vec![y]);
            inputs.insert("P3".to_string(), vec![z]);
            let got = run_gmw::<Three, _, _>(&majority, inputs);
            let expected = (x && y) ^ (x && z) ^ (y && z);
            assert_eq!(got, expected, "majority({x}, {y}, {z})");
        }
    }

    #[test]
    fn random_circuits_match_plaintext_evaluation() {
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..10 {
            let circuit = Circuit::random(&mut rng, &["P1", "P2", "P3"], 12);
            let mut inputs = BTreeMap::new();
            for p in ["P1", "P2", "P3"] {
                inputs.insert(p.to_string(), vec![rng.gen::<bool>()]);
            }
            let plain_env: BTreeMap<&str, Vec<bool>> =
                inputs.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
            let expected = circuit.eval_plain(&plain_env);
            let got = run_gmw::<Three, _, _>(&circuit, inputs);
            assert_eq!(got, expected, "trial {trial}");
        }
    }

    #[test]
    #[should_panic(expected = "outside the census")]
    fn unknown_input_party_is_rejected() {
        let circuit = Circuit::input("Ghost", 0);
        run_gmw::<Two, _, _>(&circuit, two_party_inputs(false, false));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::roles::{P1, P2, P3, P4};
    use chorus_core::Runner;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeMap;

    type Four = chorus_core::LocationSet!(P1, P2, P3, P4);

    fn run<P, PRefl, PFold>(circuit: &Circuit, inputs: BTreeMap<String, Vec<bool>>) -> bool
    where
        P: LocationSet + Subset<P, PRefl> + LocationSetFoldable<P, P, PFold>,
    {
        let runner: Runner<P> = Runner::new();
        let faceted = runner.faceted(inputs);
        runner.run(Gmw::<P, PRefl, PFold> { circuit, inputs: &faceted, phantom: PhantomData })
    }

    #[test]
    fn multiple_inputs_per_party() {
        // P1 supplies two bits; the circuit XORs them and ANDs with P2's.
        let circuit =
            Circuit::input("P1", 0).xor(Circuit::input("P1", 1)).and(Circuit::input("P2", 0));
        for bits in 0..8u8 {
            let (a, b, c) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0);
            let mut inputs = BTreeMap::new();
            inputs.insert("P1".to_string(), vec![a, b]);
            inputs.insert("P2".to_string(), vec![c]);
            inputs.insert("P3".to_string(), vec![]);
            inputs.insert("P4".to_string(), vec![]);
            let got = run::<Four, _, _>(&circuit, inputs);
            assert_eq!(got, (a ^ b) && c, "bits={bits:03b}");
        }
    }

    #[test]
    fn four_party_random_circuits_match_plaintext() {
        let mut rng = StdRng::seed_from_u64(77);
        let names = ["P1", "P2", "P3", "P4"];
        for trial in 0..6 {
            let circuit = Circuit::random(&mut rng, &names, 10);
            let mut inputs = BTreeMap::new();
            for p in names {
                inputs.insert(p.to_string(), vec![rng.gen::<bool>()]);
            }
            let plain: BTreeMap<&str, Vec<bool>> =
                inputs.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
            let expected = circuit.eval_plain(&plain);
            assert_eq!(run::<Four, _, _>(&circuit, inputs), expected, "trial {trial}");
        }
    }

    #[test]
    fn deep_and_nesting_is_correct() {
        // ((((a ∧ b) ∧ a) ∧ b) ∧ a): stresses repeated OT rounds on the
        // same shares.
        let a = || Circuit::input("P1", 0);
        let b = || Circuit::input("P2", 0);
        let circuit = a().and(b()).and(a()).and(b()).and(a());
        for (x, y) in [(true, true), (true, false), (false, true), (false, false)] {
            let mut inputs = BTreeMap::new();
            inputs.insert("P1".to_string(), vec![x]);
            inputs.insert("P2".to_string(), vec![y]);
            let got = run::<chorus_core::LocationSet!(P1, P2), _, _>(&circuit, inputs);
            assert_eq!(got, x && y, "({x}, {y})");
        }
    }

    #[test]
    fn single_party_gmw_degenerates_to_local_evaluation() {
        // With one party there are no OTs at all; the protocol still works.
        let circuit = Circuit::input("P1", 0).and(Circuit::input("P1", 1)).not();
        let mut inputs = BTreeMap::new();
        inputs.insert("P1".to_string(), vec![true, false]);
        let got = run::<chorus_core::LocationSet!(P1), _, _>(&circuit, inputs);
        assert!(got);
    }
}
