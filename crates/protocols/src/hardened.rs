//! Byzantine-hardened variants of the case studies, built on
//! `chorus_patterns`.
//!
//! Each hardened protocol follows the *preflight → inner → postflight*
//! shape the patterns crate prescribes:
//!
//! 1. **Preflight** — a [`preflight`] heartbeat round probes every link
//!    with a fixed value (the epoch) and converges, via the verdict
//!    exchange, on either "all clear" or a culprit. Always-on link
//!    faults — silence, corruption, an equivocating peer — are caught
//!    *here*, deterministically, before the inner protocol risks a
//!    panic on a bad link.
//! 2. **Inner** — the unmodified paper choreography, entered only when
//!    [`agreed_culprit`] says the links are clean; the
//!    [`agree`](chorus_core::ChoreoOp::agree) collapse is what lets
//!    every participant take the same branch.
//! 3. **Postflight** — a robust check on the inner result itself:
//!    commit-reveal consistency ([`VerifyConsistent`]) for GMW, the
//!    commitment openings re-run through [`BroadcastGather`] plus a
//!    verdict exchange for the lottery.
//!
//! The result type changes from the plain variants' bare values (or bare
//! booleans) to `Result<_, Misbehavior>`: a run either completes with a
//! verified-consistent result or names the offending role — it never
//! hangs and never silently adopts a wrong value.

use crate::lottery::{additive_share_quire, CollectShares};
use crate::roles::Analyst;
use chorus_core::{
    ChoreoOp, Choreography, Faceted, Located, LocationSet, LocationSetFoldable, Member, Quire,
    Subset,
};
use chorus_mpc::circuit::Circuit;
use chorus_mpc::commit::Commitment;
use chorus_mpc::field::FLOTTERY;
use chorus_patterns::{
    agreed_culprit, exchange_verdicts, preflight, resolve_verdicts, BroadcastGather, Misbehavior,
    MisbehaviorKind, ProposeAck, Verdict, VerifyConsistent,
};
use rand::{thread_rng, Rng};
use std::collections::BTreeMap;
use std::marker::PhantomData;

use crate::gmw::Gmw;

/// Turns a preflight resolution facet into the misbehavior to report,
/// substituting the agreed culprit where the local facet has no
/// accusation of its own (possible only outside the supported fault
/// model, but a named abort beats an `unreachable!`).
fn abort_with(culprit: &str, resolution: &Result<(), Misbehavior>, epoch: u64) -> Misbehavior {
    match resolution {
        Err(m) => m.clone(),
        Ok(()) => Misbehavior::new(
            culprit,
            MisbehaviorKind::Rejected { reason: "aborted by preflight agreement".to_string() },
            epoch,
        ),
    }
}

/// GMW with link probing before and commit-reveal verification after:
/// the inner [`Gmw`] is unchanged, but a faulted link or an equivocating
/// party yields `Err(Misbehavior)` at every endpoint instead of a panic
/// mid-protocol or a silently divergent "revealed" bit.
pub struct HardenedGmw<'a, P: LocationSet, PRefl, PFold> {
    /// The publicly known circuit to evaluate.
    pub circuit: &'a Circuit,
    /// Each party's private input bits (facet = that party's inputs).
    pub inputs: &'a Faceted<Vec<bool>, P>,
    /// Anti-replay epoch; the postflight round uses `epoch + 1`.
    pub epoch: u64,
    /// Inferred proof indices; pass `PhantomData`.
    pub phantom: PhantomData<(PRefl, PFold)>,
}

impl<P, PRefl, PFold> Choreography<Faceted<Result<bool, Misbehavior>, P>>
    for HardenedGmw<'_, P, PRefl, PFold>
where
    P: LocationSet + Subset<P, PRefl> + LocationSetFoldable<P, P, PFold>,
{
    type L = P;

    fn run(self, op: &impl ChoreoOp<Self::L>) -> Faceted<Result<bool, Misbehavior>, P> {
        let epoch = self.epoch;
        let resolution = preflight::<P, _, PRefl, PFold>(op, epoch);
        if let Some(culprit) = agreed_culprit::<P, _, PRefl, PFold>(op, &resolution) {
            return op
                .map_facets(P::new(), &resolution, move |r| Err(abort_with(&culprit, r, epoch)));
        }

        // Links are clean: run the unmodified inner protocol. Its
        // revealed bit is a *bare* value — per endpoint under EPP — so
        // re-facet it and let commit-reveal prove everyone got the same
        // answer (an equivocator can show different parties different
        // shares without tripping any transport-level check).
        let revealed = Gmw::<P, PRefl, PFold> {
            circuit: self.circuit,
            inputs: self.inputs,
            phantom: PhantomData,
        }
        .run(op);
        let refaceted: Faceted<bool, P> = op.parallel(P::new(), move || revealed);
        VerifyConsistent::<'_, bool, P, PRefl, PFold> {
            values: &refaceted,
            epoch: epoch + 1,
            phantom: PhantomData,
        }
        .run(op)
    }
}

/// The DPrio lottery with a hardened server conclave: the heartbeat
/// probes the server links, the commit/open rounds go through
/// [`BroadcastGather`] (attributing silence, corruption, replay, and
/// equivocation to the offending server), and a verdict exchange makes
/// the servers — and then the analyst — converge on any culprit.
///
/// The analyst's result is `Err(Misbehavior)` naming the offending
/// server instead of the plain variant's anonymous
/// `LotteryError::CommitmentFailed`.
pub struct HardenedLottery<
    'a,
    Clients: LocationSet,
    Servers: LocationSet,
    Census: LocationSet,
    CSub,
    SSub,
    AIdx,
    CFold,
    SFold,
    SRefl,
    SSelfFold,
> {
    /// Each client's secret (its private facet).
    pub secrets: &'a Faceted<FLOTTERY, Clients>,
    /// Upper bound for the servers' random draws.
    pub tau: u64,
    /// Anti-replay epoch for the conclave's robust rounds.
    pub epoch: u64,
    /// Fault injection: servers whose facet is `true` open a value
    /// different from their commitment (they cheat).
    pub cheaters: &'a Faceted<bool, Servers>,
    /// Inferred proof indices; pass `PhantomData`.
    pub phantom: PhantomData<(Census, CSub, SSub, AIdx, CFold, SFold, SRefl, SSelfFold)>,
}

impl<Clients, Servers, Census, CSub, SSub, AIdx, CFold, SFold, SRefl, SSelfFold>
    Choreography<Located<Result<u64, Misbehavior>, Analyst>>
    for HardenedLottery<
        '_,
        Clients,
        Servers,
        Census,
        CSub,
        SSub,
        AIdx,
        CFold,
        SFold,
        SRefl,
        SSelfFold,
    >
where
    Clients: LocationSet + Subset<Census, CSub> + LocationSetFoldable<Census, Clients, CFold>,
    Servers: LocationSet
        + Subset<Census, SSub>
        + Subset<Servers, SRefl>
        + LocationSetFoldable<Census, Servers, SFold>
        + LocationSetFoldable<Servers, Servers, SSelfFold>,
    Census: LocationSet,
    Analyst: Member<Census, AIdx>,
{
    type L = Census;

    fn run(self, op: &impl ChoreoOp<Self::L>) -> Located<Result<u64, Misbehavior>, Analyst> {
        assert!(Clients::LENGTH > 0, "the lottery needs at least one client");
        assert!(Servers::LENGTH > 0, "the lottery needs at least one server");
        assert!(self.tau >= Clients::LENGTH as u64, "tau must be at least the number of clients");

        // Share distribution is identical to the plain lottery: clients
        // cut additive shares, servers collect them.
        let client_shares: Faceted<Quire<FLOTTERY, Servers>, Clients> =
            op.map_facets(Clients::new(), self.secrets, |secret| {
                additive_share_quire::<Servers>(*secret)
            });
        let server_shares: Faceted<Quire<FLOTTERY, Clients>, Servers> = op.fanout(
            Servers::new(),
            CollectShares::<'_, Clients, Servers, Census, CSub, CFold> {
                client_shares: &client_shares,
                phantom: PhantomData,
            },
        );

        // The hardened conclave: every server ends up with the winning
        // client's share plus a verdict about the run.
        let outcome: Faceted<(FLOTTERY, Verdict), Servers> = op
            .conclave(HardenedConclave::<'_, Clients, Servers, SRefl, SSelfFold> {
                server_shares: &server_shares,
                cheaters: self.cheaters,
                tau: self.tau,
                epoch: self.epoch,
                phantom: PhantomData,
            })
            .flatten();

        let all_shares =
            op.gather(Servers::new(), <chorus_core::LocationSet!(Analyst)>::new(), &outcome);

        // The analyst resolves the servers' verdicts exactly like the
        // servers did among themselves — blame count, ties toward the
        // smaller name — so its culprit matches theirs.
        op.locally(Analyst, |un| {
            let quire = un.unwrap_ref::<Quire<(FLOTTERY, Verdict), Servers>, chorus_core::LocationSet!(Analyst), chorus_core::Here>(
                &all_shares,
            );
            let verdicts: BTreeMap<String, Verdict> =
                quire.iter().map(|(name, (_, v))| (name.to_string(), v.clone())).collect();
            let verdicts: Quire<Verdict, Servers> =
                Quire::from_map(verdicts).unwrap_or_else(|_| unreachable!("keyed by the servers"));
            resolve_verdicts(&verdicts)?;
            let sum: FLOTTERY = quire.values().map(|(share, _)| *share).sum();
            Ok(sum.value())
        })
    }
}

/// The servers' hardened conclave: heartbeat, then commit and open over
/// robust broadcast rounds, then a verdict exchange.
struct HardenedConclave<'a, Clients: LocationSet, Servers: LocationSet, SRefl, SSelfFold> {
    server_shares: &'a Faceted<Quire<FLOTTERY, Clients>, Servers>,
    cheaters: &'a Faceted<bool, Servers>,
    tau: u64,
    epoch: u64,
    phantom: PhantomData<(Clients, SRefl, SSelfFold)>,
}

impl<Clients, Servers, SRefl, SSelfFold> Choreography<Faceted<(FLOTTERY, Verdict), Servers>>
    for HardenedConclave<'_, Clients, Servers, SRefl, SSelfFold>
where
    Clients: LocationSet,
    Servers:
        LocationSet + Subset<Servers, SRefl> + LocationSetFoldable<Servers, Servers, SSelfFold>,
{
    type L = Servers;

    fn run(self, op: &impl ChoreoOp<Self::L>) -> Faceted<(FLOTTERY, Verdict), Servers> {
        let servers = Servers::new();
        let tau = self.tau;
        let epoch = self.epoch;

        // Preflight: probe the server links before any value-dependent
        // message. An always-on fault (silence, corruption, an
        // equivocating server) is caught and attributed here.
        let resolution = preflight::<Servers, _, SRefl, SSelfFold>(op, epoch);
        if let Some(culprit) = agreed_culprit::<Servers, _, SRefl, SSelfFold>(op, &resolution) {
            return op.map_facets(servers, &resolution, move |r| {
                (FLOTTERY::new(0), Verdict::Fault(abort_with(&culprit, r, epoch)))
            });
        }

        // Commit-then-open, as in the plain lottery, but both rounds go
        // through `BroadcastGather`: a server that garbles, replays, or
        // withholds a message is named, and program order still
        // guarantees nobody's ρ travels before all commitments are in.
        let rho: Faceted<u64, Servers> =
            op.parallel(servers, move || thread_rng().gen_range(1..=tau));
        let psi: Faceted<u64, Servers> = op.parallel(servers, || thread_rng().gen::<u64>());
        let alpha: Faceted<Commitment, Servers> =
            op.map_facets2(servers, &rho, &psi, |r, p| Commitment::commit(*r, *p));

        let accept_commitment = |_: &'static str, _: &Commitment| Ok(());
        let commit_round = BroadcastGather::<'_, Commitment, Servers, _, SRefl, SSelfFold> {
            values: &alpha,
            epoch,
            validate: &accept_commitment,
            phantom: PhantomData,
        }
        .run(op);

        // A cheater opens ρ+1 — a value it did not commit to.
        let opening: Faceted<(u64, u64), Servers> = {
            let rho_opened: Faceted<u64, Servers> =
                op.map_facets2(servers, &rho, self.cheaters, |r, cheat| r + u64::from(*cheat));
            op.map_facets2(servers, &rho_opened, &psi, |r, p| (*r, *p))
        };
        let accept_opening = move |_: &'static str, o: &(u64, u64)| {
            if (1..=tau + 1).contains(&o.0) {
                Ok(())
            } else {
                Err(format!("opened ρ = {} is outside [1, τ]", o.0))
            }
        };
        let open_round = BroadcastGather::<'_, (u64, u64), Servers, _, SRefl, SSelfFold> {
            values: &opening,
            epoch,
            validate: &accept_opening,
            phantom: PhantomData,
        }
        .run(op);

        // Every server verifies every commitment against its opening; a
        // mismatch accuses the opener by name (the plain lottery only
        // records an anonymous boolean here).
        let verdicts: Faceted<Verdict, Servers> =
            op.map_facets2(servers, &commit_round, &open_round, move |commits, opens| {
                let (commits, opens) = match (commits, opens) {
                    (Err(m), _) | (_, Err(m)) => return Verdict::Fault(m.clone()),
                    (Ok(c), Ok(o)) => (c, o),
                };
                for (name, commitment) in commits.iter() {
                    let (r, p) = opens.get_by_name(name).expect("rounds share the census");
                    if !commitment.verify(*r, *p) {
                        return Verdict::Fault(Misbehavior::new(
                            name,
                            MisbehaviorKind::BadCommitment,
                            epoch,
                        ));
                    }
                }
                Verdict::Ok
            });
        let ruled = exchange_verdicts::<Servers, _, SRefl, SSelfFold>(op, &verdicts, epoch);

        // Winner selection from the opened ρs, or the agreed culprit.
        let winner: Faceted<Result<String, Misbehavior>, Servers> =
            op.map_facets2(servers, &ruled, &open_round, |ruling, opens| match (ruling, opens) {
                (Err(m), _) | (_, Err(m)) => Err(m.clone()),
                (Ok(()), Ok(opens)) => {
                    let total: u64 = opens.values().map(|(r, _)| *r).sum();
                    let omega = (total % Clients::LENGTH as u64) as usize;
                    Ok(Clients::names()[omega].to_string())
                }
            });
        op.map_facets2(servers, &winner, self.server_shares, move |winner, quire| match winner {
            Err(m) => (FLOTTERY::new(0), Verdict::Fault(m.clone())),
            Ok(name) => {
                (*quire.get_by_name(name).expect("shares are keyed by the clients"), Verdict::Ok)
            }
        })
    }
}

/// A deterministic configuration-change round: the proposer pushes a
/// version bump through [`ProposeAck`]; acceptors validate that the new
/// version is the successor of the current one, and the proposer needs
/// `quorum` acknowledgements (its own included) to commit.
///
/// Deliberately free of randomness — same seed, same schedule, same
/// verdict — which makes it the replay-determinism canary in the
/// byzantine chaos matrix.
pub struct ConfigChange<
    'a,
    Proposer: chorus_core::ChoreographyLocation,
    P,
    ProposerIdx,
    PRefl,
    PFold,
> {
    /// The proposed new version, held by the proposer.
    pub new_version: &'a Located<u64, Proposer>,
    /// The version every participant currently agrees on.
    pub current_version: u64,
    /// Anti-replay epoch.
    pub epoch: u64,
    /// Acknowledgements required to commit (the proposer's own counts).
    pub quorum: usize,
    /// Inferred proof indices; pass `PhantomData`.
    pub phantom: PhantomData<(P, ProposerIdx, PRefl, PFold)>,
}

impl<Proposer, P, ProposerIdx, PRefl, PFold> Choreography<Faceted<Result<u64, Misbehavior>, P>>
    for ConfigChange<'_, Proposer, P, ProposerIdx, PRefl, PFold>
where
    Proposer: chorus_core::ChoreographyLocation + Member<P, ProposerIdx>,
    P: LocationSet + Subset<P, PRefl> + LocationSetFoldable<P, P, PFold>,
{
    type L = P;

    fn run(self, op: &impl ChoreoOp<Self::L>) -> Faceted<Result<u64, Misbehavior>, P> {
        let current = self.current_version;
        let validate = move |v: &u64| {
            if *v == current + 1 {
                Ok(())
            } else {
                Err(format!("proposed version {v} is not the successor of {current}"))
            }
        };
        ProposeAck::<'_, u64, Proposer, P, _, ProposerIdx, PRefl, PFold> {
            proposal: self.new_version,
            epoch: self.epoch,
            quorum: self.quorum,
            validate: &validate,
            phantom: PhantomData,
        }
        .run(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roles::{C1, C2, C3, P1, P2, P3, S1, S2, S3};
    use chorus_core::Runner;

    type Parties = chorus_core::LocationSet!(P1, P2, P3);

    #[test]
    fn hardened_gmw_agrees_with_the_plain_evaluation() {
        let circuit =
            Circuit::input("P1", 0).and(Circuit::input("P2", 0)).xor(Circuit::input("P3", 0));
        for bits in 0..8u8 {
            let inputs: BTreeMap<String, Vec<bool>> = [
                ("P1".to_string(), vec![bits & 1 != 0]),
                ("P2".to_string(), vec![bits & 2 != 0]),
                ("P3".to_string(), vec![bits & 4 != 0]),
            ]
            .into_iter()
            .collect();
            let expected =
                circuit.eval_plain(&inputs.iter().map(|(k, v)| (k.as_str(), v.clone())).collect());
            let runner: Runner<Parties> = Runner::new();
            let faceted = runner.faceted(inputs);
            let out = runner.run(HardenedGmw::<Parties, _, _> {
                circuit: &circuit,
                inputs: &faceted,
                epoch: 1,
                phantom: PhantomData,
            });
            for (name, result) in runner.unwrap_faceted(out) {
                assert_eq!(result, Ok(expected), "{name} under input bits {bits:03b}");
            }
        }
    }

    type Clients = chorus_core::LocationSet!(C1, C2, C3);
    type Servers = chorus_core::LocationSet!(S1, S2, S3);
    type Census = chorus_core::LocationSet!(Analyst, C1, C2, C3, S1, S2, S3);

    fn run_hardened_lottery(cheater: Option<&str>) -> Result<u64, Misbehavior> {
        let runner: Runner<Census> = Runner::new();
        let secrets: Faceted<FLOTTERY, Clients> = runner.faceted(
            [("C1", 111), ("C2", 222), ("C3", 333)]
                .into_iter()
                .map(|(k, v)| (k.to_string(), FLOTTERY::new(v)))
                .collect(),
        );
        let cheaters: Faceted<bool, Servers> = runner.faceted(
            ["S1", "S2", "S3"].into_iter().map(|s| (s.to_string(), Some(s) == cheater)).collect(),
        );
        let out = runner.run(HardenedLottery::<Clients, Servers, Census, _, _, _, _, _, _, _> {
            secrets: &secrets,
            tau: 300,
            epoch: 7,
            cheaters: &cheaters,
            phantom: PhantomData,
        });
        runner.unwrap_located(out)
    }

    #[test]
    fn honest_hardened_lottery_pays_out_a_secret() {
        for _ in 0..10 {
            let got = run_hardened_lottery(None).expect("honest run");
            assert!([111, 222, 333].contains(&got), "analyst got {got}");
        }
    }

    #[test]
    fn a_cheating_server_is_named() {
        let m = run_hardened_lottery(Some("S2")).expect_err("cheater must abort the lottery");
        assert_eq!(m.culprit, "S2", "the verdict names the cheating server");
        assert_eq!(m.kind, MisbehaviorKind::BadCommitment);
        assert_eq!(m.epoch, 7);
    }

    #[test]
    fn config_change_commits_with_a_full_quorum() {
        let runner: Runner<Parties> = Runner::new();
        let out = runner.run(ConfigChange::<P1, Parties, _, _, _> {
            new_version: &runner.local(4),
            current_version: 3,
            epoch: 11,
            quorum: 3,
            phantom: PhantomData,
        });
        for (name, result) in runner.unwrap_faceted(out) {
            assert_eq!(result, Ok(4), "{name} must adopt the new version");
        }
    }

    #[test]
    fn config_change_rejects_a_version_skip() {
        let runner: Runner<Parties> = Runner::new();
        let out = runner.run(ConfigChange::<P1, Parties, _, _, _> {
            new_version: &runner.local(9),
            current_version: 3,
            epoch: 11,
            quorum: 3,
            phantom: PhantomData,
        });
        for (_, result) in runner.unwrap_faceted(out) {
            let m = result.expect_err("a skip must be rejected");
            assert_eq!(m.culprit, "P1", "the proposer is to blame");
            assert!(matches!(m.kind, MisbehaviorKind::Rejected { .. }));
        }
    }
}
