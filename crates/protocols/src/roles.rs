//! Concrete locations shared by examples, tests, and benchmarks.
//!
//! Census-polymorphic choreographies are generic over location *sets*; to
//! run one you instantiate it with concrete locations (the paper §4:
//! census polymorphism resolves statically — "it is always possible in
//! principle to unroll the top-level choreography into a monomorphic
//! form"). These declarations are that unrolling's vocabulary.

chorus_core::locations! {
    /// The requesting client in the KVS protocols.
    Client,
    /// The primary server in the KVS protocols.
    Primary,
    /// The analyst receiving the lottery output (Appendix C).
    Analyst,
}

chorus_core::locations! {
    /// Backup server #1.
    Backup1,
    /// Backup server #2.
    Backup2,
    /// Backup server #3.
    Backup3,
    /// Backup server #4.
    Backup4,
    /// Backup server #5.
    Backup5,
    /// Backup server #6.
    Backup6,
    /// Backup server #7.
    Backup7,
    /// Backup server #8.
    Backup8,
}

chorus_core::locations! {
    /// MPC party #1.
    P1,
    /// MPC party #2.
    P2,
    /// MPC party #3.
    P3,
    /// MPC party #4.
    P4,
    /// MPC party #5.
    P5,
    /// MPC party #6.
    P6,
    /// MPC party #7.
    P7,
    /// MPC party #8.
    P8,
}

chorus_core::locations! {
    /// Lottery client #1.
    C1,
    /// Lottery client #2.
    C2,
    /// Lottery client #3.
    C3,
    /// Lottery client #4.
    C4,
    /// Lottery server #1.
    S1,
    /// Lottery server #2.
    S2,
    /// Lottery server #3.
    S3,
    /// Lottery server #4.
    S4,
}
