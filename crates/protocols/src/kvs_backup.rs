//! The paper's central case study (Fig. 2): a key-value store replicated
//! across a primary and a *census-polymorphic* set of backup servers.
//!
//! The protocol demonstrates every headline feature at once:
//!
//! * **Census polymorphism** — the choreography is generic over the
//!   type-level list `Backups`; the same code runs with one backup or
//!   eight.
//! * **Conclaves** — after the primary forwards the request, the servers
//!   do all their work (replication, acknowledgement, hash comparison,
//!   resynch) in conclaves the client never hears about.
//! * **MLV reuse of knowledge of choice** — the request is multicast to
//!   the servers *once*; both conclaves branch on the same
//!   multiply-located value with no further communication (§3.3: "No
//!   additional communication is needed for KoC in the second
//!   conditional!").
//! * **Faceted values** — each server's store is its private facet;
//!   replica divergence (injected corruption) is detected by comparing
//!   content hashes gathered at the primary and repaired by an expensive
//!   resynch that runs only when needed, *after* the client has its
//!   response.

use crate::roles::{Client, Primary};
use crate::store::{Request, Response, SharedStore};
use chorus_core::{
    ChoreoOp, Choreography, Faceted, HCons, Located, LocationSet, LocationSetFoldable,
    MultiplyLocated, Quire, Subset,
};
use std::collections::BTreeSet;
use std::marker::PhantomData;

/// The servers: the primary plus the backups.
pub type Servers<Backups> = HCons<Primary, Backups>;

/// The full census: the client plus the servers.
pub type KvsCensus<Backups> = HCons<Client, Servers<Backups>>;

/// What the replicated KVS hands back: the client's response plus a
/// server-side flag recording whether the expensive resynch ran.
pub struct KvsOutcome<Backups: LocationSet> {
    /// The response, located at the client.
    pub response: Located<Response, Client>,
    /// Whether the servers had to resynchronize (owned by the servers;
    /// the client never learns this).
    pub resynched: MultiplyLocated<bool, Servers<Backups>>,
}

/// The Fig. 2 choreography. Generic over the backup set and the inferred
/// proof indices (`SrvSubsetCensus`: servers ⊆ census; `SrvRefl`:
/// servers ⊆ servers, for conclave-internal operators; `SrvFold`: the
/// fold witness for census-polymorphic loops over the servers).
pub struct ReplicatedKvs<Backups: LocationSet, SrvSubsetCensus, SrvRefl, SrvFold> {
    /// The client's request.
    pub request: Located<Request, Client>,
    /// Every server's private copy of the store.
    pub states: Faceted<SharedStore, Servers<Backups>>,
    /// Inferred proof indices; pass `PhantomData`.
    pub phantom: PhantomData<(SrvSubsetCensus, SrvRefl, SrvFold)>,
}

impl<Backups: LocationSet, SrvSubsetCensus, SrvRefl, SrvFold> Choreography<KvsOutcome<Backups>>
    for ReplicatedKvs<Backups, SrvSubsetCensus, SrvRefl, SrvFold>
where
    Servers<Backups>: Subset<KvsCensus<Backups>, SrvSubsetCensus>,
    Servers<Backups>: Subset<Servers<Backups>, SrvRefl>,
    Servers<Backups>: LocationSetFoldable<Servers<Backups>, Servers<Backups>, SrvFold>,
{
    type L = KvsCensus<Backups>;

    fn run(self, op: &impl ChoreoOp<Self::L>) -> KvsOutcome<Backups> {
        // Fig. 2 line 20: the client sends the request to the primary.
        let at_primary = op.comm(Client, Primary, &self.request);
        // Line 21: the primary forwards it to all servers — the one and
        // only knowledge-of-choice message for the entire protocol.
        let request_shared: MultiplyLocated<Request, Servers<Backups>> =
            op.multicast(Primary, <Servers<Backups>>::new(), &at_primary);

        // Lines 22–35: the servers handle the request without the client.
        let response_at_primary: Located<Response, Primary> = op
            .conclave(HandleRequest::<'_, Backups, SrvRefl, SrvFold> {
                request: request_shared.clone(),
                states: &self.states,
                phantom: PhantomData,
            })
            .flatten();

        // Line 36: the client gets its answer immediately...
        let response = op.comm(Primary, Client, &response_at_primary);

        // Lines 39–51: ...while the servers check replica integrity and,
        // if needed, resynchronize. The client is not involved: no
        // messages reach it from this conclave, and the branch decision
        // reuses `request_shared` with no new communication.
        let resynched = op.conclave(SyncCheck::<'_, Backups, SrvRefl, SrvFold> {
            request: request_shared,
            states: &self.states,
            phantom: PhantomData,
        });

        KvsOutcome { response, resynched }
    }
}

/// First conclave (Fig. 2 lines 22–35): all servers examine the request;
/// `Put`s are applied everywhere and acknowledged to the primary; `Get`s
/// are answered by the primary alone.
struct HandleRequest<'a, Backups: LocationSet, SrvRefl, SrvFold> {
    request: MultiplyLocated<Request, Servers<Backups>>,
    states: &'a Faceted<SharedStore, Servers<Backups>>,
    phantom: PhantomData<(SrvRefl, SrvFold)>,
}

impl<Backups: LocationSet, SrvRefl, SrvFold> Choreography<Located<Response, Primary>>
    for HandleRequest<'_, Backups, SrvRefl, SrvFold>
where
    Servers<Backups>: Subset<Servers<Backups>, SrvRefl>,
    Servers<Backups>: LocationSetFoldable<Servers<Backups>, Servers<Backups>, SrvFold>,
{
    type L = Servers<Backups>;

    fn run(self, op: &impl ChoreoOp<Self::L>) -> Located<Response, Primary> {
        let servers = <Servers<Backups>>::new();
        match op.naked(self.request) {
            Request::Put(key, value) => {
                // Every server applies the update to its own replica.
                let responses: Faceted<Response, Servers<Backups>> =
                    op.map_facets(servers, self.states, |store| store.put(&key, &value));
                // The primary waits for every server's acknowledgement
                // (the paper's `fanIn` of `_ack` flags, line 28).
                let acks: Faceted<(), Servers<Backups>> = op.parallel(servers, || ());
                let _acks: MultiplyLocated<
                    Quire<(), Servers<Backups>>,
                    chorus_core::LocationSet!(Primary),
                > = op.gather(servers, <chorus_core::LocationSet!(Primary)>::new(), &acks);
                // `localize primary responses` (line 31): the primary's
                // facet is its response.
                op.locally(Primary, |un| un.unwrap_faceted(&responses))
            }
            Request::Get(key) => {
                op.locally(Primary, |un| un.unwrap_faceted_ref(self.states).get(&key))
            }
            Request::Stop => op.locally(Primary, |_| Response::Stopped),
        }
    }
}

/// Second conclave (Fig. 2 lines 39–51): after a `Put`, servers compare
/// content hashes at the primary; on divergence the primary broadcasts
/// its snapshot and everyone overwrites. Returns whether resynch ran.
struct SyncCheck<'a, Backups: LocationSet, SrvRefl, SrvFold> {
    request: MultiplyLocated<Request, Servers<Backups>>,
    states: &'a Faceted<SharedStore, Servers<Backups>>,
    phantom: PhantomData<(SrvRefl, SrvFold)>,
}

impl<Backups: LocationSet, SrvRefl, SrvFold> Choreography<bool>
    for SyncCheck<'_, Backups, SrvRefl, SrvFold>
where
    Servers<Backups>: Subset<Servers<Backups>, SrvRefl>,
    Servers<Backups>: LocationSetFoldable<Servers<Backups>, Servers<Backups>, SrvFold>,
{
    type L = Servers<Backups>;

    fn run(self, op: &impl ChoreoOp<Self::L>) -> bool {
        let servers = <Servers<Backups>>::new();
        match op.naked(self.request) {
            Request::Put(_, _) => {
                // Lines 42–44: hash every replica, gather at the primary.
                let hashes: Faceted<u64, Servers<Backups>> =
                    op.map_facets(servers, self.states, SharedStore::content_hash);
                let gathered: MultiplyLocated<
                    Quire<u64, Servers<Backups>>,
                    chorus_core::LocationSet!(Primary),
                > = op.gather(servers, <chorus_core::LocationSet!(Primary)>::new(), &hashes);
                // Lines 45–47: the primary checks for divergence.
                let needs_resynch = op.locally(Primary, |un| {
                    let quire = un.unwrap_ref(&gathered);
                    let distinct: BTreeSet<u64> = quire.values().copied().collect();
                    distinct.len() > 1
                });
                // Line 48: broadcast *within the conclave* — the client
                // never sees this knowledge-of-choice message.
                if op.broadcast(Primary, needs_resynch) {
                    // Line 49: resynch — "Could take a while!"
                    let snapshot =
                        op.locally(Primary, |un| un.unwrap_faceted_ref(self.states).snapshot());
                    let replicated = op.multicast(Primary, servers, &snapshot);
                    let snapshot = op.naked(replicated);
                    let _: Faceted<(), Servers<Backups>> =
                        op.map_facets(servers, self.states, move |store| {
                            store.overwrite(snapshot.clone())
                        });
                    true
                } else {
                    false
                }
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roles::{Backup1, Backup2};
    use chorus_core::Runner;
    use std::collections::BTreeMap;

    type Backups = chorus_core::LocationSet!(Backup1, Backup2);
    type Census = KvsCensus<Backups>;

    fn stores() -> (BTreeMap<String, SharedStore>, Faceted<SharedStore, Servers<Backups>>) {
        let mut map = BTreeMap::new();
        for name in ["Primary", "Backup1", "Backup2"] {
            map.insert(name.to_string(), SharedStore::new());
        }
        let runner: Runner<Census> = Runner::new();
        let faceted = runner.faceted(map.iter().map(|(k, v)| (k.clone(), v.clone())).collect());
        (map, faceted)
    }

    fn run_request(
        runner: &Runner<Census>,
        states: &Faceted<SharedStore, Servers<Backups>>,
        request: Request,
    ) -> (Response, bool) {
        let outcome = runner.run(ReplicatedKvs::<Backups, _, _, _> {
            request: runner.local(request),
            states: states.clone(),
            phantom: PhantomData,
        });
        (runner.unwrap_located(outcome.response), runner.unwrap_located(outcome.resynched))
    }

    #[test]
    fn put_replicates_to_every_server() {
        let runner: Runner<Census> = Runner::new();
        let (map, states) = stores();
        let (response, resynched) =
            run_request(&runner, &states, Request::Put("k".into(), "v".into()));
        assert_eq!(response, Response::NotFound);
        assert!(!resynched, "healthy replicas must not resynch");
        for store in map.values() {
            assert_eq!(store.get("k"), Response::Found("v".into()));
        }
    }

    #[test]
    fn get_is_served_by_the_primary() {
        let runner: Runner<Census> = Runner::new();
        let (map, states) = stores();
        map["Primary"].put("k", "v");
        map["Backup1"].put("k", "v");
        map["Backup2"].put("k", "v");
        let (response, resynched) = run_request(&runner, &states, Request::Get("k".into()));
        assert_eq!(response, Response::Found("v".into()));
        assert!(!resynched, "gets never resynch");
    }

    #[test]
    fn corrupted_replica_triggers_resynch_and_repair() {
        let runner: Runner<Census> = Runner::new();
        let (map, states) = stores();
        map["Backup1"].corrupt_next_put();
        let (_, resynched) = run_request(&runner, &states, Request::Put("k".into(), "v".into()));
        assert!(resynched, "diverged replicas must resynch");
        // After resynch every replica matches the primary.
        let reference = map["Primary"].snapshot();
        for store in map.values() {
            assert_eq!(store.snapshot(), reference);
        }
        // And a subsequent Put is clean.
        let (_, resynched) = run_request(&runner, &states, Request::Put("k".into(), "w".into()));
        assert!(!resynched);
    }

    #[test]
    fn stop_is_acknowledged_without_resynch() {
        let runner: Runner<Census> = Runner::new();
        let (_, states) = stores();
        let (response, resynched) = run_request(&runner, &states, Request::Stop);
        assert_eq!(response, Response::Stopped);
        assert!(!resynched);
    }

    #[test]
    fn works_with_a_single_backup() {
        type One = chorus_core::LocationSet!(Backup1);
        let runner: Runner<KvsCensus<One>> = Runner::new();
        let mut map = BTreeMap::new();
        map.insert("Primary".to_string(), SharedStore::new());
        map.insert("Backup1".to_string(), SharedStore::new());
        let states: Faceted<SharedStore, Servers<One>> = runner.faceted(map.clone());
        let outcome = runner.run(ReplicatedKvs::<One, _, _, _> {
            request: runner.local(Request::Put("a".into(), "1".into())),
            states,
            phantom: PhantomData,
        });
        assert_eq!(runner.unwrap_located(outcome.response), Response::NotFound);
        assert_eq!(map["Backup1"].get("a"), Response::Found("1".into()));
    }
}
