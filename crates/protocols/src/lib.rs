//! The paper's case-study choreographies (§6, Appendices A–C),
//! implemented against `chorus-core`.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`kvs_simple`] | Fig. 1 — client–server key-value store |
//! | [`kvs_baseline`] | the same protocol as [`kvs_backup`] written against the HasChor-style baseline library, for the efficiency comparison |
//! | [`kvs_backup`] | Fig. 2 — census-polymorphic primary/backup KVS with hash checks and resynch |
//! | [`kvs_gather`] | Figs. 10–11 — ChoRus-style KVS with a hand-rolled `Gather` fan-in |
//! | [`gmw`] | Figs. 8–9 — GMW secure multiparty computation |
//! | [`lottery`] | Figs. 12–13 — the DPrio fair lottery |
//! | [`hardened`] | Byzantine-hardened lottery/GMW plus a deterministic config-change round, built on `chorus_patterns` |
//!
//! The [`roles`] module declares reusable concrete locations (clients,
//! servers, parties) that examples, tests, and benchmarks instantiate the
//! census-polymorphic choreographies with.

pub mod gmw;
pub mod hardened;
pub mod kvs_backup;
pub mod kvs_baseline;
pub mod kvs_gather;
pub mod kvs_simple;
pub mod lottery;
pub mod roles;
pub mod store;
