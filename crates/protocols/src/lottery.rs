//! The DPrio fair lottery (§6, Appendix C, Figs. 12–13).
//!
//! Clients secret-share their inputs to a set of servers; the servers
//! jointly pick a uniformly random client — fair as long as at least one
//! server is honest — and forward that client's shares to an analyst, who
//! reconstructs the value without learning whose it was.
//!
//! The fairness mechanism is commit-then-open: every server publishes
//! `α = H(ρ, ψ)` *before* any server reveals its random `ρ`, so no server
//! can choose its "randomness" after seeing the others'. A server that
//! opens a value different from its commitment is detected by everyone
//! (step 4) and the lottery aborts.
//!
//! The choreography is polymorphic over the number and identity of both
//! the clients and the servers (the paper: "the choreography is
//! polymorphic over the quantities and identities of both the clients and
//! the servers").

use crate::roles::Analyst;
use chorus_core::{
    ChoreoOp, Choreography, ChoreographyLocation, Faceted, Located, LocationSet,
    LocationSetFoldable, Member, MultiplyLocated, Quire, Subset,
};
use chorus_mpc::commit::Commitment;
use chorus_mpc::field::FLOTTERY;
use rand::{thread_rng, Rng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::marker::PhantomData;

/// Why a lottery run aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LotteryError {
    /// A server's opened `(ρ, ψ)` did not match its commitment
    /// (Appendix C: `throw new Error("Commitment failed")`).
    CommitmentFailed,
}

impl std::fmt::Display for LotteryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LotteryError::CommitmentFailed => write!(f, "commitment verification failed"),
        }
    }
}

impl std::error::Error for LotteryError {}

/// The lottery choreography.
///
/// Type parameters: `Clients` and `Servers` are census-polymorphic
/// location sets; `Census` is any census containing both plus the
/// [`Analyst`]; the rest are inferred proof indices.
pub struct Lottery<
    'a,
    Clients: LocationSet,
    Servers: LocationSet,
    Census: LocationSet,
    CSub,
    SSub,
    AIdx,
    CFold,
    SFold,
    SRefl,
    SSelfFold,
> {
    /// Each client's secret (its private facet).
    pub secrets: &'a Faceted<FLOTTERY, Clients>,
    /// Upper bound for the servers' random draws; the paper takes τ to be
    /// a multiple of the number of clients so the index is uniform.
    pub tau: u64,
    /// Fault injection: servers whose facet is `true` open a value
    /// different from their commitment (they cheat).
    pub cheaters: &'a Faceted<bool, Servers>,
    /// Inferred proof indices; pass `PhantomData`.
    pub phantom: PhantomData<(Census, CSub, SSub, AIdx, CFold, SFold, SRefl, SSelfFold)>,
}

impl<Clients, Servers, Census, CSub, SSub, AIdx, CFold, SFold, SRefl, SSelfFold>
    Choreography<Located<Result<u64, LotteryError>, Analyst>>
    for Lottery<'_, Clients, Servers, Census, CSub, SSub, AIdx, CFold, SFold, SRefl, SSelfFold>
where
    Clients: LocationSet + Subset<Census, CSub> + LocationSetFoldable<Census, Clients, CFold>,
    Servers: LocationSet
        + Subset<Census, SSub>
        + Subset<Servers, SRefl>
        + LocationSetFoldable<Census, Servers, SFold>
        + LocationSetFoldable<Servers, Servers, SSelfFold>,
    Census: LocationSet,
    Analyst: Member<Census, AIdx>,
{
    type L = Census;

    fn run(self, op: &impl ChoreoOp<Self::L>) -> Located<Result<u64, LotteryError>, Analyst> {
        assert!(Clients::LENGTH > 0, "the lottery needs at least one client");
        assert!(Servers::LENGTH > 0, "the lottery needs at least one server");
        assert!(self.tau >= Clients::LENGTH as u64, "tau must be at least the number of clients");

        // Clients split their secrets into one additive share per server
        // (Fig. 12 `clientShares`).
        let client_shares: Faceted<Quire<FLOTTERY, Servers>, Clients> =
            op.map_facets(Clients::new(), self.secrets, |secret| {
                additive_share_quire::<Servers>(*secret)
            });

        // Every server collects its share from every client (Fig. 12
        // `serverShares`: a fanout over servers of fanins over clients).
        let server_shares: Faceted<Quire<FLOTTERY, Clients>, Servers> = op.fanout(
            Servers::new(),
            CollectShares::<'_, Clients, Servers, Census, CSub, CFold> {
                client_shares: &client_shares,
                phantom: PhantomData,
            },
        );

        // The servers run the lottery among themselves — the client and
        // analyst hear nothing until the final share transfer.
        let outcome: Faceted<(FLOTTERY, bool), Servers> = op
            .conclave(ServersLottery::<'_, Clients, Servers, SRefl, SSelfFold> {
                server_shares: &server_shares,
                cheaters: self.cheaters,
                tau: self.tau,
                phantom: PhantomData,
            })
            .flatten();

        // Every server sends its chosen share (and verdict) to the
        // analyst (Fig. 13 `allShares`).
        let all_shares: MultiplyLocated<
            Quire<(FLOTTERY, bool), Servers>,
            chorus_core::LocationSet!(Analyst),
        > = op.gather(Servers::new(), <chorus_core::LocationSet!(Analyst)>::new(), &outcome);

        // The analyst reconstructs (Fig. 13 final `locally`).
        op.locally(Analyst, |un| {
            let quire = un.unwrap_ref::<Quire<(FLOTTERY, bool), Servers>, chorus_core::LocationSet!(Analyst), chorus_core::Here>(
                &all_shares,
            );
            if quire.values().all(|(_, ok)| *ok) {
                let sum: FLOTTERY = quire.values().map(|(share, _)| *share).sum();
                Ok(sum.value())
            } else {
                Err(LotteryError::CommitmentFailed)
            }
        })
    }
}

/// Splits `secret` into additive shares keyed by the servers.
pub(crate) fn additive_share_quire<Servers: LocationSet>(
    secret: FLOTTERY,
) -> Quire<FLOTTERY, Servers> {
    let mut rng = thread_rng();
    let mut map: BTreeMap<String, FLOTTERY> =
        Servers::names().into_iter().map(|n| (n.to_string(), FLOTTERY::random(&mut rng))).collect();
    let total: FLOTTERY = map.values().copied().sum();
    let first = Servers::names()[0];
    if let Some(entry) = map.get_mut(first) {
        *entry = *entry + secret - total;
    }
    Quire::from_map(map).expect("share quire is keyed by the servers")
}

/// Fan-out over servers: each server gathers one share from every client.
pub(crate) struct CollectShares<'a, Clients: LocationSet, Servers: LocationSet, Census, CSub, CFold>
{
    pub(crate) client_shares: &'a Faceted<Quire<FLOTTERY, Servers>, Clients>,
    pub(crate) phantom: PhantomData<(Census, CSub, CFold)>,
}

impl<Clients, Servers, Census, CSub, CFold>
    chorus_core::FanOutChoreography<Quire<FLOTTERY, Clients>>
    for CollectShares<'_, Clients, Servers, Census, CSub, CFold>
where
    Clients: LocationSet + Subset<Census, CSub> + LocationSetFoldable<Census, Clients, CFold>,
    Servers: LocationSet,
    Census: LocationSet,
{
    type L = Census;
    type QS = Servers;

    fn run<Q: ChoreographyLocation, QSSubsetL, QMemberL, QMemberQS>(
        &self,
        op: &impl ChoreoOp<Self::L>,
    ) -> Located<Quire<FLOTTERY, Clients>, Q>
    where
        Self::QS: Subset<Self::L, QSSubsetL>,
        Q: Member<Self::L, QMemberL>,
        Q: Member<Self::QS, QMemberQS>,
    {
        op.fanin::<FLOTTERY, Clients, chorus_core::LocationSet!(Q), _, CSub, chorus_core::SubsetCons<QMemberL, chorus_core::SubsetNil>, CFold>(
            Clients::new(),
            SendShare::<'_, Clients, Servers, Census, Q> {
                client_shares: self.client_shares,
                phantom: PhantomData,
            },
        )
    }
}

/// Fan-in over clients with a fixed server recipient: each client sends
/// the share it cut for that server.
struct SendShare<'a, Clients: LocationSet, Servers: LocationSet, Census, QServer> {
    client_shares: &'a Faceted<Quire<FLOTTERY, Servers>, Clients>,
    phantom: PhantomData<(Census, QServer)>,
}

impl<Clients, Servers, Census, QServer> chorus_core::FanInChoreography<FLOTTERY>
    for SendShare<'_, Clients, Servers, Census, QServer>
where
    Clients: LocationSet,
    Servers: LocationSet,
    Census: LocationSet,
    QServer: ChoreographyLocation,
{
    type L = Census;
    type QS = Clients;
    type RS = chorus_core::LocationSet!(QServer);

    fn run<Q: ChoreographyLocation, QSSubsetL, RSSubsetL, QMemberL, QMemberQS>(
        &self,
        op: &impl ChoreoOp<Self::L>,
    ) -> MultiplyLocated<FLOTTERY, Self::RS>
    where
        Self::QS: Subset<Self::L, QSSubsetL>,
        Self::RS: Subset<Self::L, RSSubsetL>,
        Q: Member<Self::L, QMemberL>,
        Q: Member<Self::QS, QMemberQS>,
    {
        let share = op.locally(Q::new(), |un| {
            *un.unwrap_faceted_ref::<Quire<FLOTTERY, Servers>, Clients, QMemberQS>(
                self.client_shares,
            )
            .get_by_name(QServer::NAME)
            .expect("client shares are keyed by the servers")
        });
        op.multicast::<Q, FLOTTERY, Self::RS, QMemberL, RSSubsetL>(
            Q::new(),
            <Self::RS>::new(),
            &share,
        )
    }
}

/// The servers' conclave: draw randomness, commit, open, verify, and pick
/// the winning client's shares (Fig. 12 steps 1–5).
struct ServersLottery<'a, Clients: LocationSet, Servers: LocationSet, SRefl, SSelfFold> {
    server_shares: &'a Faceted<Quire<FLOTTERY, Clients>, Servers>,
    cheaters: &'a Faceted<bool, Servers>,
    tau: u64,
    phantom: PhantomData<(Clients, SRefl, SSelfFold)>,
}

impl<Clients, Servers, SRefl, SSelfFold> Choreography<Faceted<(FLOTTERY, bool), Servers>>
    for ServersLottery<'_, Clients, Servers, SRefl, SSelfFold>
where
    Clients: LocationSet,
    Servers:
        LocationSet + Subset<Servers, SRefl> + LocationSetFoldable<Servers, Servers, SSelfFold>,
{
    type L = Servers;

    fn run(self, op: &impl ChoreoOp<Self::L>) -> Faceted<(FLOTTERY, bool), Servers> {
        let servers = Servers::new();
        let tau = self.tau;

        // 1) Each server selects a random number ρ ∈ [1, τ] and a salt ψ.
        let rho: Faceted<u64, Servers> =
            op.parallel(servers, move || thread_rng().gen_range(1..=tau));
        let psi: Faceted<u64, Servers> = op.parallel(servers, || thread_rng().gen::<u64>());

        // 2) Each server publishes the commitment α = H(ρ, ψ).
        let alpha: Faceted<Commitment, Servers> =
            op.map_facets2(servers, &rho, &psi, |r, p| Commitment::commit(*r, *p));
        let alpha_all = op.gather(servers, servers, &alpha);

        // 3) Every server opens its commitment — ψ first, then ρ. A
        // cheater opens ρ+1, i.e. a value it did not commit to. (The
        // sequential separation matters: nobody's ρ is sent until all
        // commitments are in.)
        let psi_all = op.gather(servers, servers, &psi);
        let rho_opened: Faceted<u64, Servers> =
            op.map_facets2(servers, &rho, self.cheaters, |r, cheat| r + u64::from(*cheat));
        let rho_all = op.gather(servers, servers, &rho_opened);

        // 4) All servers verify every commitment (replicated, pure).
        let alpha_all = op.naked(alpha_all);
        let psi_all = op.naked(psi_all);
        let rho_all = op.naked(rho_all);
        let ok = alpha_all.iter().all(|(name, commitment)| {
            let rho_n = rho_all.get_by_name(name).expect("same index set");
            let psi_n = psi_all.get_by_name(name).expect("same index set");
            commitment.verify(*rho_n, *psi_n)
        });

        // 5) Sum the random values to pick the winning client index.
        let total: u64 = rho_all.values().sum();
        let omega = (total % Clients::LENGTH as u64) as usize;
        let winner = Clients::names()[omega].to_string();

        // Each server selects the winner's share and attaches its verdict.
        op.map_facets(servers, self.server_shares, move |quire| {
            let share = *quire.get_by_name(&winner).expect("shares are keyed by the clients");
            (share, ok)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roles::{C1, C2, C3, S1, S2, S3};
    use chorus_core::Runner;

    type Clients = chorus_core::LocationSet!(C1, C2, C3);
    type Servers = chorus_core::LocationSet!(S1, S2, S3);
    type Census = chorus_core::LocationSet!(Analyst, C1, C2, C3, S1, S2, S3);

    fn secrets(values: [u64; 3]) -> BTreeMap<String, FLOTTERY> {
        [("C1", values[0]), ("C2", values[1]), ("C3", values[2])]
            .into_iter()
            .map(|(k, v)| (k.to_string(), FLOTTERY::new(v)))
            .collect()
    }

    fn no_cheaters() -> BTreeMap<String, bool> {
        ["S1", "S2", "S3"].into_iter().map(|s| (s.to_string(), false)).collect()
    }

    fn run_lottery(
        secret_map: BTreeMap<String, FLOTTERY>,
        cheater_map: BTreeMap<String, bool>,
    ) -> Result<u64, LotteryError> {
        let runner: Runner<Census> = Runner::new();
        let secrets: Faceted<FLOTTERY, Clients> = runner.faceted(secret_map);
        let cheaters: Faceted<bool, Servers> = runner.faceted(cheater_map);
        let out = runner.run(Lottery::<Clients, Servers, Census, _, _, _, _, _, _, _> {
            secrets: &secrets,
            tau: 300,
            cheaters: &cheaters,
            phantom: PhantomData,
        });
        runner.unwrap_located(out)
    }

    #[test]
    fn analyst_receives_one_of_the_secrets() {
        let values = [111, 222, 333];
        for _ in 0..10 {
            let got = run_lottery(secrets(values), no_cheaters()).expect("honest run");
            assert!(values.contains(&got), "analyst got {got}, not a client secret");
        }
    }

    #[test]
    fn all_clients_can_win() {
        let values = [111, 222, 333];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(run_lottery(secrets(values), no_cheaters()).unwrap());
            if seen.len() == 3 {
                break;
            }
        }
        assert_eq!(seen.len(), 3, "every client should win eventually; saw {seen:?}");
    }

    #[test]
    fn a_cheating_server_is_caught() {
        let mut cheaters = no_cheaters();
        cheaters.insert("S2".to_string(), true);
        let result = run_lottery(secrets([1, 2, 3]), cheaters);
        assert_eq!(result, Err(LotteryError::CommitmentFailed));
    }

    #[test]
    #[should_panic(expected = "tau must be at least")]
    fn undersized_tau_is_rejected() {
        let runner: Runner<Census> = Runner::new();
        let secrets: Faceted<FLOTTERY, Clients> = runner.faceted(secrets([1, 2, 3]));
        let cheaters: Faceted<bool, Servers> = runner.faceted(no_cheaters());
        let _ = runner.run(Lottery::<Clients, Servers, Census, _, _, _, _, _, _, _> {
            secrets: &secrets,
            tau: 2,
            cheaters: &cheaters,
            phantom: PhantomData,
        });
    }
}
