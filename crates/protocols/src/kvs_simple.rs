//! The paper's first example (Fig. 1): a client sends a request to a
//! key-value store on a server; the server responds.
//!
//! ```haskell
//! kvs request stateRef = do
//!   request' <- (client, request) ~> server
//!   response <- locally server \un ->
//!     handleRequest (un server request') (un server stateRef)
//!   (server, response) ~> client
//! ```

use crate::roles::{Client, Primary};
use crate::store::{Request, Response, SharedStore};
use chorus_core::{
    ChoreoOp, Choreography, ChoreographyLocation, Located, RoleProgram, SessionCx, Step,
    TransportError,
};

/// The census of the simple KVS: one client, one server.
pub type SimpleKvsCensus = chorus_core::LocationSet!(Client, Primary);

/// One request/response round trip against a single server (Fig. 1).
///
/// The server's state is a [`SharedStore`] located at [`Primary`]; the
/// client's request is located at [`Client`]. Each endpoint supplies its
/// own half via `Projector::local` / `Projector::local_faceted` and the
/// placeholder for the other.
pub struct SimpleKvs {
    /// The client's request.
    pub request: Located<Request, Client>,
    /// The server's store.
    pub state: Located<SharedStore, Primary>,
}

impl Choreography<Located<Response, Client>> for SimpleKvs {
    type L = SimpleKvsCensus;

    fn run(self, op: &impl ChoreoOp<Self::L>) -> Located<Response, Client> {
        // send the request to the server
        let request = op.comm(Client, Primary, &self.request);
        // server handles the request and creates a response
        let response = op.locally(Primary, |un| {
            let state = un.unwrap_ref(&self.state);
            handle_request(un.unwrap_ref(&request), state)
        });
        // server sends the response back to the client
        op.comm(Primary, Client, &response)
    }
}

/// The server's local request handler (Fig. 1's `handleRequest`).
pub fn handle_request(request: &Request, state: &SharedStore) -> Response {
    match request {
        Request::Put(key, value) => state.put(key, value),
        Request::Get(key) => state.get(key),
        Request::Stop => Response::Stopped,
    }
}

/// [`SimpleKvs`] projected to [`Client`] as a resumable state machine
/// for the pooled session runtime — the explicit-FSM form of exactly
/// the sends and receives `Session::epp_and_run(SimpleKvs)` performs at
/// the client, so pooled clients interoperate with blocking servers
/// (and vice versa) frame for frame.
///
/// States: send the request (once), then poll for the response.
pub struct PooledKvsClient {
    request: Option<Request>,
}

impl PooledKvsClient {
    /// A client that will issue `request` and resolve with the server's
    /// response.
    pub fn new(request: Request) -> Self {
        PooledKvsClient { request: Some(request) }
    }
}

impl RoleProgram for PooledKvsClient {
    type Output = Response;

    fn resume(&mut self, cx: &mut SessionCx<'_>) -> Result<Step<Self::Output>, TransportError> {
        // Sends never block, but must happen exactly once across
        // resumes: taking the request out of the Option is the state
        // transition.
        if let Some(request) = self.request.take() {
            cx.send_value(Primary::NAME, &request)?;
        }
        match cx.try_receive_value::<Response>(Primary::NAME)? {
            Some(response) => Ok(Step::Done(response)),
            None => Ok(Step::Pending),
        }
    }
}

/// [`SimpleKvs`] projected to [`Primary`] as a resumable state machine
/// for the pooled session runtime: poll for the request, handle it
/// against the store, send the response, done.
pub struct PooledKvsServer {
    state: SharedStore,
}

impl PooledKvsServer {
    /// A server answering one request against `state`.
    pub fn new(state: SharedStore) -> Self {
        PooledKvsServer { state }
    }
}

impl RoleProgram for PooledKvsServer {
    type Output = ();

    fn resume(&mut self, cx: &mut SessionCx<'_>) -> Result<Step<Self::Output>, TransportError> {
        let Some(request) = cx.try_receive_value::<Request>(Client::NAME)? else {
            return Ok(Step::Pending);
        };
        let response = handle_request(&request, &self.state);
        cx.send_value(Client::NAME, &response)?;
        Ok(Step::Done(()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chorus_core::Runner;

    #[test]
    fn put_then_get_round_trips() {
        let runner: Runner<SimpleKvsCensus> = Runner::new();
        let store = SharedStore::new();

        let put = SimpleKvs {
            request: runner.local(Request::Put("lang".into(), "rust".into())),
            state: runner.local(store.clone()),
        };
        assert_eq!(runner.unwrap_located(runner.run(put)), Response::NotFound);

        let get = SimpleKvs {
            request: runner.local(Request::Get("lang".into())),
            state: runner.local(store),
        };
        assert_eq!(runner.unwrap_located(runner.run(get)), Response::Found("rust".into()));
    }

    #[test]
    fn stop_is_acknowledged() {
        let runner: Runner<SimpleKvsCensus> = Runner::new();
        let choreo = SimpleKvs {
            request: runner.local(Request::Stop),
            state: runner.local(SharedStore::new()),
        };
        assert_eq!(runner.unwrap_located(runner.run(choreo)), Response::Stopped);
    }
}
