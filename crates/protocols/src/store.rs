//! The key-value store state shared by the KVS choreographies.
//!
//! The storage plumbing every KVS variant needs — a keyed map behind a
//! shared lock — lives here exactly once: [`KeyValueStore`] is the
//! abstraction, [`MapStore`] the canonical implementation. The Fig. 2
//! protocols use [`SharedStore`] (a `MapStore<String>` with the paper's
//! deterministic corruption injection on top), the Appendix B ChoRus
//! listing uses `MapStore<i32>` directly, and the `chorus_kvs` subsystem
//! implements [`KeyValueStore`] for its versioned shard stores.
//!
//! Mirrors the paper's Fig. 2 setup: each server holds a mutable `State`
//! (`Map String String`) behind a reference, and `updateState` "has a
//! small chance of randomly saving the wrong value" — here corruption is
//! injected deterministically through [`SharedStore::corrupt_next_put`]
//! so tests and benchmarks control when the resynch path fires.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A request against the store (Fig. 2: `Put | Get | Stop`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Request {
    /// Associate a value with a key; responds with the previous value.
    Put(String, String),
    /// Look up a key.
    Get(String),
    /// Shut the system down.
    Stop,
}

/// A response from the store (Fig. 2: `Found | NotFound | Stopped`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Response {
    /// The (previous) value associated with the key.
    Found(String),
    /// No value is associated with the key.
    NotFound,
    /// The system acknowledged a `Stop`.
    Stopped,
}

/// The in-memory store abstraction every KVS variant backs onto.
///
/// Implementors are cheap shared handles: cloning shares state, so a
/// test can keep a handle on a replica's store while a choreography
/// runs against it from another thread.
pub trait KeyValueStore {
    /// The stored value type.
    type Value: Clone;

    /// Associates `value` with `key`, returning the previous value.
    fn put(&self, key: &str, value: Self::Value) -> Option<Self::Value>;

    /// Looks up `key`.
    fn get(&self, key: &str) -> Option<Self::Value>;

    /// Number of stored entries.
    fn len(&self) -> usize;

    /// Whether the store holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the full contents, for resynch and assertions.
    fn snapshot(&self) -> BTreeMap<String, Self::Value>;

    /// Replaces the contents wholesale (the resynch step).
    fn overwrite(&self, map: BTreeMap<String, Self::Value>);
}

/// The canonical [`KeyValueStore`]: a `BTreeMap` behind a shared lock.
///
/// Cloning shares the underlying state (it is an `Arc`), which is how a
/// test keeps a handle on a server's store while the choreography runs.
#[derive(Debug)]
pub struct MapStore<V> {
    inner: Arc<Mutex<BTreeMap<String, V>>>,
}

impl<V> Clone for MapStore<V> {
    fn clone(&self) -> Self {
        Self { inner: Arc::clone(&self.inner) }
    }
}

impl<V> Default for MapStore<V> {
    fn default() -> Self {
        Self { inner: Arc::new(Mutex::new(BTreeMap::new())) }
    }
}

impl<V> MapStore<V> {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` with the locked map, for bulk operations (hashes,
    /// merges) that should not clone the whole contents.
    pub fn with_map<R>(&self, f: impl FnOnce(&mut BTreeMap<String, V>) -> R) -> R {
        f(&mut self.inner.lock())
    }
}

impl<V: Clone> KeyValueStore for MapStore<V> {
    type Value = V;

    fn put(&self, key: &str, value: V) -> Option<V> {
        self.inner.lock().insert(key.to_string(), value)
    }

    fn get(&self, key: &str) -> Option<V> {
        self.inner.lock().get(key).cloned()
    }

    fn len(&self) -> usize {
        self.inner.lock().len()
    }

    fn snapshot(&self) -> BTreeMap<String, V> {
        self.inner.lock().clone()
    }

    fn overwrite(&self, map: BTreeMap<String, V>) {
        *self.inner.lock() = map;
    }
}

/// One Fig. 2 server's copy of the store: shared, mutable, and
/// corruptible. A [`MapStore<String>`] plus deterministic fault
/// injection.
#[derive(Debug, Clone, Default)]
pub struct SharedStore {
    map: MapStore<String>,
    corrupt_next_put: Arc<AtomicBool>,
}

impl SharedStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms fault injection: the next `Put` on this replica stores a
    /// corrupted value (the paper's "small chance of randomly saving the
    /// wrong value", made deterministic).
    pub fn corrupt_next_put(&self) {
        self.corrupt_next_put.store(true, Ordering::SeqCst);
    }

    /// Applies a `Put`, returning the previous value (Fig. 2's
    /// `updateState`).
    pub fn put(&self, key: &str, value: &str) -> Response {
        let stored = if self.corrupt_next_put.swap(false, Ordering::SeqCst) {
            format!("{value}\u{fffd}corrupt")
        } else {
            value.to_string()
        };
        match KeyValueStore::put(&self.map, key, stored) {
            Some(previous) => Response::Found(previous),
            None => Response::NotFound,
        }
    }

    /// Looks up a key (Fig. 2's `lookupState`).
    pub fn get(&self, key: &str) -> Response {
        match KeyValueStore::get(&self.map, key) {
            Some(value) => Response::Found(value),
            None => Response::NotFound,
        }
    }

    /// A content hash of the whole store (Fig. 2's `hashState`), used to
    /// detect replica divergence. FNV-1a over the sorted entries.
    pub fn content_hash(&self) -> u64 {
        self.map.with_map(|map| {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            let mut absorb = |bytes: &[u8]| {
                for b in bytes {
                    hash ^= u64::from(*b);
                    hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
                }
            };
            for (k, v) in map.iter() {
                absorb(k.as_bytes());
                absorb(&[0]);
                absorb(v.as_bytes());
                absorb(&[1]);
            }
            hash
        })
    }

    /// A copy of the full contents, for resynch and assertions.
    pub fn snapshot(&self) -> BTreeMap<String, String> {
        KeyValueStore::snapshot(&self.map)
    }

    /// Replaces the contents wholesale (the resynch step).
    pub fn overwrite(&self, map: BTreeMap<String, String>) {
        KeyValueStore::overwrite(&self.map, map)
    }
}

impl KeyValueStore for SharedStore {
    type Value = String;

    fn put(&self, key: &str, value: String) -> Option<String> {
        match SharedStore::put(self, key, &value) {
            Response::Found(previous) => Some(previous),
            _ => None,
        }
    }

    fn get(&self, key: &str) -> Option<String> {
        match SharedStore::get(self, key) {
            Response::Found(value) => Some(value),
            _ => None,
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn snapshot(&self) -> BTreeMap<String, String> {
        SharedStore::snapshot(self)
    }

    fn overwrite(&self, map: BTreeMap<String, String>) {
        SharedStore::overwrite(self, map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_returns_previous_value() {
        let store = SharedStore::new();
        assert_eq!(store.put("k", "v1"), Response::NotFound);
        assert_eq!(store.put("k", "v2"), Response::Found("v1".into()));
        assert_eq!(store.get("k"), Response::Found("v2".into()));
        assert_eq!(store.get("missing"), Response::NotFound);
    }

    #[test]
    fn corruption_fires_once() {
        let store = SharedStore::new();
        store.corrupt_next_put();
        store.put("k", "v");
        assert_ne!(store.get("k"), Response::Found("v".into()));
        store.put("k", "v");
        assert_eq!(store.get("k"), Response::Found("v".into()));
    }

    #[test]
    fn content_hash_detects_divergence() {
        let a = SharedStore::new();
        let b = SharedStore::new();
        assert_eq!(a.content_hash(), b.content_hash());
        a.put("k", "v");
        b.put("k", "v");
        assert_eq!(a.content_hash(), b.content_hash());
        b.put("k", "w");
        assert_ne!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn overwrite_resynchronizes() {
        let a = SharedStore::new();
        let b = SharedStore::new();
        a.put("k", "v");
        b.corrupt_next_put();
        b.put("k", "v");
        assert_ne!(a.content_hash(), b.content_hash());
        b.overwrite(a.snapshot());
        assert_eq!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn clones_share_state() {
        let a = SharedStore::new();
        let b = a.clone();
        a.put("k", "v");
        assert_eq!(b.get("k"), Response::Found("v".into()));
    }

    #[test]
    fn map_store_is_a_key_value_store() {
        let store: MapStore<i32> = MapStore::new();
        assert!(store.is_empty());
        assert_eq!(KeyValueStore::put(&store, "k", 1), None);
        assert_eq!(KeyValueStore::put(&store, "k", 2), Some(1));
        assert_eq!(KeyValueStore::get(&store, "k"), Some(2));
        assert_eq!(store.len(), 1);
        let other: MapStore<i32> = MapStore::new();
        other.overwrite(store.snapshot());
        assert_eq!(KeyValueStore::get(&other, "k"), Some(2));
    }

    #[test]
    fn shared_store_implements_the_trait() {
        let store = SharedStore::new();
        assert_eq!(KeyValueStore::put(&store, "k", "v".to_string()), None);
        assert_eq!(KeyValueStore::get(&store, "k"), Some("v".to_string()));
        assert_eq!(KeyValueStore::len(&store), 1);
    }
}
