//! The key-value store state shared by the KVS choreographies.
//!
//! Mirrors the paper's Fig. 2 setup: each server holds a mutable `State`
//! (`Map String String`) behind a reference, and `updateState` "has a
//! small chance of randomly saving the wrong value" — here corruption is
//! injected deterministically through [`SharedStore::corrupt_next_put`]
//! so tests and benchmarks control when the resynch path fires.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A request against the store (Fig. 2: `Put | Get | Stop`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Request {
    /// Associate a value with a key; responds with the previous value.
    Put(String, String),
    /// Look up a key.
    Get(String),
    /// Shut the system down.
    Stop,
}

/// A response from the store (Fig. 2: `Found | NotFound | Stopped`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Response {
    /// The (previous) value associated with the key.
    Found(String),
    /// No value is associated with the key.
    NotFound,
    /// The system acknowledged a `Stop`.
    Stopped,
}

/// One server's copy of the store: shared, mutable, and corruptible.
///
/// Cloning shares the underlying state (it is an `Arc`), which is how a
/// test keeps a handle on a server's store while the choreography runs.
#[derive(Debug, Clone, Default)]
pub struct SharedStore {
    inner: Arc<Mutex<StoreInner>>,
}

#[derive(Debug, Default)]
struct StoreInner {
    map: BTreeMap<String, String>,
    corrupt_next_put: bool,
}

impl SharedStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms fault injection: the next `Put` on this replica stores a
    /// corrupted value (the paper's "small chance of randomly saving the
    /// wrong value", made deterministic).
    pub fn corrupt_next_put(&self) {
        self.inner.lock().corrupt_next_put = true;
    }

    /// Applies a `Put`, returning the previous value (Fig. 2's
    /// `updateState`).
    pub fn put(&self, key: &str, value: &str) -> Response {
        let mut inner = self.inner.lock();
        let stored = if std::mem::take(&mut inner.corrupt_next_put) {
            format!("{value}\u{fffd}corrupt")
        } else {
            value.to_string()
        };
        match inner.map.insert(key.to_string(), stored) {
            Some(previous) => Response::Found(previous),
            None => Response::NotFound,
        }
    }

    /// Looks up a key (Fig. 2's `lookupState`).
    pub fn get(&self, key: &str) -> Response {
        match self.inner.lock().map.get(key) {
            Some(value) => Response::Found(value.clone()),
            None => Response::NotFound,
        }
    }

    /// A content hash of the whole store (Fig. 2's `hashState`), used to
    /// detect replica divergence. FNV-1a over the sorted entries.
    pub fn content_hash(&self) -> u64 {
        let inner = self.inner.lock();
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut absorb = |bytes: &[u8]| {
            for b in bytes {
                hash ^= u64::from(*b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for (k, v) in inner.map.iter() {
            absorb(k.as_bytes());
            absorb(&[0]);
            absorb(v.as_bytes());
            absorb(&[1]);
        }
        hash
    }

    /// A copy of the full contents, for resynch and assertions.
    pub fn snapshot(&self) -> BTreeMap<String, String> {
        self.inner.lock().map.clone()
    }

    /// Replaces the contents wholesale (the resynch step).
    pub fn overwrite(&self, map: BTreeMap<String, String>) {
        self.inner.lock().map = map;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_returns_previous_value() {
        let store = SharedStore::new();
        assert_eq!(store.put("k", "v1"), Response::NotFound);
        assert_eq!(store.put("k", "v2"), Response::Found("v1".into()));
        assert_eq!(store.get("k"), Response::Found("v2".into()));
        assert_eq!(store.get("missing"), Response::NotFound);
    }

    #[test]
    fn corruption_fires_once() {
        let store = SharedStore::new();
        store.corrupt_next_put();
        store.put("k", "v");
        assert_ne!(store.get("k"), Response::Found("v".into()));
        store.put("k", "v");
        assert_eq!(store.get("k"), Response::Found("v".into()));
    }

    #[test]
    fn content_hash_detects_divergence() {
        let a = SharedStore::new();
        let b = SharedStore::new();
        assert_eq!(a.content_hash(), b.content_hash());
        a.put("k", "v");
        b.put("k", "v");
        assert_eq!(a.content_hash(), b.content_hash());
        b.put("k", "w");
        assert_ne!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn overwrite_resynchronizes() {
        let a = SharedStore::new();
        let b = SharedStore::new();
        a.put("k", "v");
        b.corrupt_next_put();
        b.put("k", "v");
        assert_ne!(a.content_hash(), b.content_hash());
        b.overwrite(a.snapshot());
        assert_eq!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn clones_share_state() {
        let a = SharedStore::new();
        let b = a.clone();
        a.put("k", "v");
        assert_eq!(b.get("k"), Response::Found("v".into()));
    }
}
