//! The replicated KVS of Fig. 2, rewritten against the HasChor-style
//! baseline library (`chorus-baseline`) for the paper's efficiency
//! comparison (§1, §2.2).
//!
//! Three structural regressions are forced by the baseline model:
//!
//! 1. Every conditional (`cond`) **broadcasts its scrutinee to the whole
//!    census**, so the client receives the request relay, the repeated
//!    request relay, and the resynch decision — none of which it needs.
//! 2. Without MLVs, knowledge of choice **cannot be reused**: the second
//!    phase re-broadcasts the very same request.
//! 3. Without census polymorphism, the choreography must **enumerate its
//!    backups**; the [`baseline_replicated_kvs!`](crate::baseline_replicated_kvs) macro unrolls one
//!    choreography per backup count, which is exactly the manual labor
//!    census polymorphism removes.

use crate::store::SharedStore;
#[cfg(test)]
use crate::store::{Request, Response};

/// Declares a baseline replicated-KVS choreography for a fixed census.
///
/// The generated struct has two fields: `request` (the client's request)
/// and `stores` (a name-keyed map holding only the stores present at the
/// executing endpoint; the centralized runner passes all of them).
#[macro_export]
macro_rules! baseline_replicated_kvs {
    (
        $(#[$meta:meta])*
        $name:ident,
        census = $census:ty,
        client = $client:ty,
        primary = $primary:ty,
        backups = [$($backup:ty),* $(,)?]
    ) => {
        $(#[$meta])*
        pub struct $name {
            /// The client's request.
            pub request: ::chorus_baseline::Located<$crate::store::Request, $client>,
            /// Each endpoint's stores, keyed by location name. A projected
            /// endpoint holds only its own; the runner holds all.
            pub stores: ::std::collections::BTreeMap<String, $crate::store::SharedStore>,
        }

        impl ::chorus_baseline::BaselineChoreography<
            ::chorus_baseline::Located<$crate::store::Response, $client>,
        > for $name {
            type L = $census;

            fn run(
                self,
                op: &impl ::chorus_baseline::HasChorOp<Self::L>,
            ) -> ::chorus_baseline::Located<$crate::store::Response, $client> {
                use ::chorus_core::ChoreographyLocation as _;
                let stores = &self.stores;
                let store_of = |name: &str| {
                    stores.get(name).expect("endpoint has its own store").clone()
                };

                let request = op.comm(
                    <$client>::new(),
                    <$primary>::new(),
                    &self.request,
                );

                // FIRST broadcast: `cond` sends the request to the whole
                // census — including the client, who just sent it.
                let response = op.cond(<$primary>::new(), &request, |req| match req {
                    $crate::store::Request::Put(key, value) => {
                        $(
                            let ack = op.locally(<$backup>::new(), |_| {
                                store_of(<$backup>::NAME).put(key, value);
                            });
                            let _ = op.comm(<$backup>::new(), <$primary>::new(), &ack);
                        )*
                        op.locally(<$primary>::new(), |_| {
                            store_of(<$primary>::NAME).put(key, value)
                        })
                    }
                    $crate::store::Request::Get(key) => op.locally(<$primary>::new(), |_| {
                        store_of(<$primary>::NAME).get(key)
                    }),
                    $crate::store::Request::Stop => op.locally(<$primary>::new(), |_| {
                        $crate::store::Response::Stopped
                    }),
                });

                let response = op.comm(<$primary>::new(), <$client>::new(), &response);

                // SECOND broadcast of the *same* request: without MLVs the
                // knowledge-of-choice decision cannot be reused.
                op.cond(<$primary>::new(), &request, |req| {
                    if let $crate::store::Request::Put(_, _) = req {
                        let mut hashes = Vec::new();
                        $(
                            let h = op.locally(<$backup>::new(), |_| {
                                store_of(<$backup>::NAME).content_hash()
                            });
                            hashes.push(op.comm(<$backup>::new(), <$primary>::new(), &h));
                        )*
                        let needs_resynch = op.locally(<$primary>::new(), |un| {
                            let mut distinct = ::std::collections::BTreeSet::new();
                            distinct.insert(store_of(<$primary>::NAME).content_hash());
                            for h in &hashes {
                                distinct.insert(*un.unwrap_ref(h));
                            }
                            distinct.len() > 1
                        });
                        // THIRD broadcast: the resynch decision also goes
                        // to everyone, client included.
                        op.cond(<$primary>::new(), &needs_resynch, |needs| {
                            if *needs {
                                let snapshot = op.locally(<$primary>::new(), |_| {
                                    store_of(<$primary>::NAME).snapshot()
                                });
                                $(
                                    let copy = op.comm(
                                        <$primary>::new(),
                                        <$backup>::new(),
                                        &snapshot,
                                    );
                                    op.locally(<$backup>::new(), |un| {
                                        store_of(<$backup>::NAME)
                                            .overwrite(un.unwrap(&copy));
                                    });
                                )*
                            }
                        });
                    }
                });

                response
            }
        }
    };
}

baseline_replicated_kvs! {
    /// Baseline replicated KVS with one backup.
    BaselineKvs1,
    census = chorus_core::LocationSet!(
        crate::roles::Client, crate::roles::Primary, crate::roles::Backup1
    ),
    client = crate::roles::Client,
    primary = crate::roles::Primary,
    backups = [crate::roles::Backup1]
}

baseline_replicated_kvs! {
    /// Baseline replicated KVS with two backups.
    BaselineKvs2,
    census = chorus_core::LocationSet!(
        crate::roles::Client, crate::roles::Primary,
        crate::roles::Backup1, crate::roles::Backup2
    ),
    client = crate::roles::Client,
    primary = crate::roles::Primary,
    backups = [crate::roles::Backup1, crate::roles::Backup2]
}

baseline_replicated_kvs! {
    /// Baseline replicated KVS with four backups.
    BaselineKvs4,
    census = chorus_core::LocationSet!(
        crate::roles::Client, crate::roles::Primary,
        crate::roles::Backup1, crate::roles::Backup2,
        crate::roles::Backup3, crate::roles::Backup4
    ),
    client = crate::roles::Client,
    primary = crate::roles::Primary,
    backups = [
        crate::roles::Backup1, crate::roles::Backup2,
        crate::roles::Backup3, crate::roles::Backup4
    ]
}

baseline_replicated_kvs! {
    /// Baseline replicated KVS with eight backups.
    BaselineKvs8,
    census = chorus_core::LocationSet!(
        crate::roles::Client, crate::roles::Primary,
        crate::roles::Backup1, crate::roles::Backup2,
        crate::roles::Backup3, crate::roles::Backup4,
        crate::roles::Backup5, crate::roles::Backup6,
        crate::roles::Backup7, crate::roles::Backup8
    ),
    client = crate::roles::Client,
    primary = crate::roles::Primary,
    backups = [
        crate::roles::Backup1, crate::roles::Backup2,
        crate::roles::Backup3, crate::roles::Backup4,
        crate::roles::Backup5, crate::roles::Backup6,
        crate::roles::Backup7, crate::roles::Backup8
    ]
}

/// Convenience: builds the full store map (for the centralized runner).
pub fn all_stores(names: &[&str]) -> std::collections::BTreeMap<String, SharedStore> {
    names.iter().map(|n| (n.to_string(), SharedStore::new())).collect()
}

/// Re-exported so callers see the same request/response types as the
/// conclave version.
pub use crate::store::{Request as BaselineRequest, Response as BaselineResponse};

#[cfg(test)]
mod tests {
    use super::*;
    use chorus_baseline::BaselineRunner;

    type Census2 = chorus_core::LocationSet!(
        crate::roles::Client,
        crate::roles::Primary,
        crate::roles::Backup1,
        crate::roles::Backup2
    );

    #[test]
    fn baseline_put_replicates_and_resynch_repairs() {
        let runner: BaselineRunner<Census2> = BaselineRunner::new();
        let stores = all_stores(&["Primary", "Backup1", "Backup2"]);
        stores["Backup1"].corrupt_next_put();

        let out = runner.run(BaselineKvs2 {
            request: runner.local(Request::Put("k".into(), "v".into())),
            stores: stores.clone(),
        });
        assert_eq!(runner.unwrap_located(out), Response::NotFound);

        // The corrupted backup was repaired by the resynch path.
        let reference = stores["Primary"].snapshot();
        for store in stores.values() {
            assert_eq!(store.snapshot(), reference);
        }
    }

    #[test]
    fn baseline_get_answers_from_primary() {
        let runner: BaselineRunner<Census2> = BaselineRunner::new();
        let stores = all_stores(&["Primary", "Backup1", "Backup2"]);
        stores["Primary"].put("k", "v");
        let out =
            runner.run(BaselineKvs2 { request: runner.local(Request::Get("k".into())), stores });
        assert_eq!(runner.unwrap_located(out), Response::Found("v".into()));
    }
}
