//! Appendix B (Figs. 10–11): the ChoRus census-polymorphic KVS.
//!
//! A leaner sibling of [`kvs_backup`](crate::kvs_backup) that mirrors the
//! paper's ChoRus listing directly: `HandleRequest` is a conclave whose
//! census excludes the client; `Put`s are applied by the backups in
//! parallel and their status codes are collected at the server with a
//! hand-rolled [`chorus_core::FanInChoreography`] called [`Gather`] (Fig. 11); the
//! server commits its own write only if every backup reported success.

use crate::roles::{Client, Primary};
use crate::store::{KeyValueStore, MapStore};
use chorus_core::{
    ChoreoOp, Choreography, ChoreographyLocation, Faceted, HCons, Located, LocationSet,
    LocationSetFoldable, Member, MultiplyLocated, Quire, Subset,
};
use serde::{Deserialize, Serialize};
use std::marker::PhantomData;

/// A request (Fig. 10: `Put(key, value) | Get(key)`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Request {
    /// Store a value under a key.
    Put(String, i32),
    /// Look up a key.
    Get(String),
}

/// A response code, as in Fig. 10: `0` means success, `-1` means the
/// backups lost synchronization.
pub type Response = i32;

/// One participant's store: the shared [`MapStore`] abstraction from
/// [`crate::store`], specialized to the listing's `i32` values.
pub type Store = MapStore<i32>;

/// Fig. 10's `handle_put`: returns `0` for success.
pub fn handle_put(store: &Store, key: &str, value: i32) -> Response {
    store.put(key, value);
    0
}

/// Fig. 10's `handle_get`.
pub fn handle_get(store: &Store, key: &str) -> Response {
    store.get(key).unwrap_or(-1)
}

/// The servers' census: `HCons<Server, Backups>` in the paper's notation.
pub type ServerSet<Backups> = HCons<Primary, Backups>;

/// The full census: `HCons<Client, HCons<Server, Backups>>`.
pub type KvsCensus<Backups> = HCons<Client, ServerSet<Backups>>;

/// Fig. 11's `Gather`, specialized as in the paper: a fan-in that sends
/// each sender's facet to a recipient set.
pub struct Gather<'a, V, Senders: LocationSet, Receivers, Census> {
    /// The faceted values to collect.
    pub values: &'a Faceted<V, Senders>,
    /// Inferred proofs.
    pub phantom: PhantomData<(Receivers, Census)>,
}

impl<V, Senders, Receivers, Census> chorus_core::FanInChoreography<V>
    for Gather<'_, V, Senders, Receivers, Census>
where
    V: chorus_core::Portable + Clone,
    Senders: LocationSet,
    Receivers: LocationSet,
    Census: LocationSet,
{
    type L = Census;
    type QS = Senders;
    type RS = Receivers;

    fn run<Q: ChoreographyLocation, QSSubsetL, RSSubsetL, QMemberL, QMemberQS>(
        &self,
        op: &impl ChoreoOp<Self::L>,
    ) -> MultiplyLocated<V, Self::RS>
    where
        Self::QS: Subset<Self::L, QSSubsetL>,
        Self::RS: Subset<Self::L, RSSubsetL>,
        Q: Member<Self::L, QMemberL>,
        Q: Member<Self::QS, QMemberQS>,
    {
        let x = op.locally(Q::new(), |un| un.unwrap_faceted(self.values));
        op.multicast::<Q, V, Self::RS, QMemberL, RSSubsetL>(Q::new(), <Self::RS>::new(), &x)
    }
}

/// Fig. 10's `HandleRequest`: the sub-choreography among the servers.
pub struct HandleRequest<'a, Backups: LocationSet, BRefl, BFold> {
    /// The request, already at the server.
    pub request: Located<Request, Primary>,
    /// The backups' stores.
    pub backup_stores: &'a Faceted<Store, Backups>,
    /// The server's own store.
    pub server_store: &'a Located<Store, Primary>,
    /// Inferred proofs.
    pub phantom: PhantomData<(BRefl, BFold)>,
}

impl<Backups: LocationSet, BRefl, BFold> Choreography<Located<Response, Primary>>
    for HandleRequest<'_, Backups, BRefl, BFold>
where
    Backups: Subset<ServerSet<Backups>, BRefl>,
    Backups: LocationSetFoldable<ServerSet<Backups>, Backups, BFold>,
{
    type L = ServerSet<Backups>;

    fn run(self, op: &impl ChoreoOp<Self::L>) -> Located<Response, Primary> {
        match op.broadcast(Primary, self.request) {
            Request::Put(key, value) => {
                // Backups apply the write in parallel...
                let oks: Faceted<Response, Backups> =
                    op.map_facets(Backups::new(), self.backup_stores, |store| {
                        handle_put(store, &key, value)
                    });
                // ...and report their status codes to the server (Fig. 10
                // lines 14–17, via the Fig. 11 Gather).
                let gathered: MultiplyLocated<
                    Quire<Response, Backups>,
                    chorus_core::LocationSet!(Primary),
                > = op.fanin(
                    Backups::new(),
                    Gather::<
                        '_,
                        Response,
                        Backups,
                        chorus_core::LocationSet!(Primary),
                        ServerSet<Backups>,
                    > {
                        values: &oks,
                        phantom: PhantomData,
                    },
                );
                // Fig. 10 lines 18–26: commit only if every backup is ok.
                op.locally(Primary, |un| {
                    let all_ok = un.unwrap_ref(&gathered).values().all(|response| *response == 0);
                    if all_ok {
                        handle_put(un.unwrap_ref(self.server_store), &key, value)
                    } else {
                        -1
                    }
                })
            }
            Request::Get(key) => {
                op.locally(Primary, |un| handle_get(un.unwrap_ref(self.server_store), &key))
            }
        }
    }
}

/// Fig. 10's `KVS`: client sends a request; the servers conclave handles
/// it; the response returns to the client.
pub struct Kvs<'a, Backups: LocationSet, BPresent, BServers, BRefl, BFold> {
    /// The client's request.
    pub request: Located<Request, Client>,
    /// The backups' stores.
    pub backup_stores: &'a Faceted<Store, Backups>,
    /// The server's store.
    pub server_store: &'a Located<Store, Primary>,
    /// Inferred proofs.
    pub phantom: PhantomData<(BPresent, BServers, BRefl, BFold)>,
}

impl<Backups: LocationSet, BPresent, BServers, BRefl, BFold> Choreography<Located<Response, Client>>
    for Kvs<'_, Backups, BPresent, BServers, BRefl, BFold>
where
    ServerSet<Backups>: Subset<KvsCensus<Backups>, BPresent>,
    Backups: Subset<ServerSet<Backups>, BServers>,
    Backups: Subset<ServerSet<Backups>, BRefl>,
    Backups: LocationSetFoldable<ServerSet<Backups>, Backups, BFold>,
{
    type L = KvsCensus<Backups>;

    fn run(self, op: &impl ChoreoOp<Self::L>) -> Located<Response, Client> {
        let request = op.comm(Client, Primary, &self.request);
        let response: Located<Response, Primary> = op
            .conclave(HandleRequest::<'_, Backups, BRefl, BFold> {
                request,
                backup_stores: self.backup_stores,
                server_store: self.server_store,
                phantom: PhantomData,
            })
            .flatten();
        op.comm(Primary, Client, &response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roles::{Backup1, Backup2};
    use chorus_core::Runner;
    use std::collections::BTreeMap;

    type Backups = chorus_core::LocationSet!(Backup1, Backup2);
    type Census = KvsCensus<Backups>;

    struct Setup {
        runner: Runner<Census>,
        backups: BTreeMap<String, Store>,
        server: Store,
        backup_stores: Faceted<Store, Backups>,
        server_store: Located<Store, Primary>,
    }

    fn setup() -> Setup {
        let runner: Runner<Census> = Runner::new();
        let mut backups = BTreeMap::new();
        backups.insert("Backup1".to_string(), Store::default());
        backups.insert("Backup2".to_string(), Store::default());
        let server = Store::default();
        let backup_stores = runner.faceted(backups.clone());
        let server_store = runner.local(server.clone());
        Setup { runner, backups, server, backup_stores, server_store }
    }

    fn run(setup: &Setup, request: Request) -> Response {
        let out = setup.runner.run(Kvs::<Backups, _, _, _, _> {
            request: setup.runner.local(request),
            backup_stores: &setup.backup_stores,
            server_store: &setup.server_store,
            phantom: PhantomData,
        });
        setup.runner.unwrap_located(out)
    }

    #[test]
    fn put_propagates_to_server_and_backups() {
        let s = setup();
        assert_eq!(run(&s, Request::Put("x".into(), 5)), 0);
        assert_eq!(s.server.get("x"), Some(5));
        assert_eq!(s.backups["Backup1"].get("x"), Some(5));
        assert_eq!(s.backups["Backup2"].get("x"), Some(5));
    }

    #[test]
    fn get_reads_the_server_store() {
        let s = setup();
        assert_eq!(run(&s, Request::Get("missing".into())), -1);
        run(&s, Request::Put("x".into(), 9));
        assert_eq!(run(&s, Request::Get("x".into())), 9);
    }
}
