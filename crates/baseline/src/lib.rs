//! A faithful HasChor-style baseline: library-level choreographic
//! programming with **broadcast-based knowledge of choice** (§2.2).
//!
//! HasChor "solves the KoC problem in what Shen et al. describe as an
//! 'admittedly heavy-handed' way: by broadcasting the chosen branch of
//! each conditional to all parties". This crate reproduces exactly that
//! programming model so the benchmark harness can measure what
//! conclaves-&-MLVs save:
//!
//! * [`Located<V, L>`] values have **one** owner — there are no
//!   multiply-located values.
//! * The only conditional is [`HasChorOp::cond`], which broadcasts the
//!   scrutinee to **every** member of the census, including parties that
//!   do nothing in either branch.
//! * There are no conclaves, so no sub-census can branch privately, and
//!   no KoC decision can be reused: branching on the same data twice
//!   broadcasts it twice.
//! * There is no census polymorphism: choreographies enumerate their
//!   participants exactly (the `baseline_replicated_kvs!` macro in
//!   `chorus-protocols` unrolls one choreography per backup count).
//!
//! The crate shares locations, location sets, membership proofs, and
//! transports with `chorus-core`, so both libraries run over identical
//! plumbing and message counts are directly comparable.

use chorus_core::{ChoreographyLocation, LocationSet, Member, Portable, Session, SessionTransport};
use std::marker::PhantomData;

/// A value of type `V` owned by the single location `L` — HasChor's
/// `t @ l` (paper Fig. 1).
#[derive(Debug, Clone)]
pub struct Located<V, L> {
    value: Option<V>,
    owner: PhantomData<L>,
}

impl<V, L> Located<V, L> {
    fn local(value: V) -> Self {
        Located { value: Some(value), owner: PhantomData }
    }

    fn remote() -> Self {
        Located { value: None, owner: PhantomData }
    }
}

/// The capability to read values located at `L1` (HasChor's `un`).
#[derive(Debug, Clone, Copy)]
pub struct Unwrapper<L: ChoreographyLocation> {
    location: PhantomData<L>,
}

impl<L1: ChoreographyLocation> Unwrapper<L1> {
    /// Returns a reference to a located value owned by `L1`.
    ///
    /// # Panics
    ///
    /// Panics if the value escaped its executor (impossible through the
    /// public API).
    pub fn unwrap_ref<'a, V>(&self, located: &'a Located<V, L1>) -> &'a V {
        located.value.as_ref().expect("located value absent at its owner")
    }

    /// Returns a clone of a located value owned by `L1`.
    pub fn unwrap<V: Clone>(&self, located: &Located<V, L1>) -> V {
        self.unwrap_ref(located).clone()
    }
}

/// A HasChor-style choreography over census `L`.
pub trait BaselineChoreography<R = ()> {
    /// The exact, enumerated set of participants.
    type L: LocationSet;

    /// Runs the choreography against injected operators.
    fn run(self, op: &impl HasChorOp<Self::L>) -> R;
}

/// HasChor's three operators: `locally`, `~>` (comm), and `cond`.
pub trait HasChorOp<Census: LocationSet> {
    /// Performs a local computation at `location` (HasChor's `locally`).
    fn locally<V, L1: ChoreographyLocation, Index>(
        &self,
        location: L1,
        computation: impl Fn(Unwrapper<L1>) -> V,
    ) -> Located<V, L1>
    where
        L1: Member<Census, Index>;

    /// Point-to-point communication (HasChor's `~>`).
    ///
    /// # Panics
    ///
    /// Panics if the underlying transport fails.
    fn comm<S: ChoreographyLocation, R: ChoreographyLocation, V: Portable, I1, I2>(
        &self,
        from: S,
        to: R,
        data: &Located<V, S>,
    ) -> Located<V, R>
    where
        S: Member<Census, I1>,
        R: Member<Census, I2>;

    /// Conditional execution (HasChor's `cond`): broadcasts the scrutinee
    /// owned by `at` to **the entire census**, then every participant
    /// runs the continuation on the (now shared) value.
    ///
    /// # Panics
    ///
    /// Panics if the underlying transport fails.
    fn cond<S: ChoreographyLocation, V: Portable, R, Index>(
        &self,
        at: S,
        scrutinee: &Located<V, S>,
        continuation: impl FnOnce(&V) -> R,
    ) -> R
    where
        S: Member<Census, Index>;
}

/// Projects baseline choreographies to one endpoint over a
/// [`Session`], mirroring `chorus_core::Session::epp_and_run`.
///
/// The projector runs inside one session of a shared endpoint, so the
/// baseline and the conclaves-&-MLVs library execute over identical
/// plumbing (same envelopes, same layers, same demultiplexing) and
/// their message counts stay directly comparable.
pub struct BaselineProjector<'a, 'e, TL, Target, T, TargetIndex>
where
    TL: LocationSet,
    Target: ChoreographyLocation,
    T: SessionTransport<TL, Target>,
{
    session: &'a Session<'e, TL, Target, T>,
    phantom: PhantomData<fn() -> TargetIndex>,
}

impl<'a, 'e, TL, Target, T, TargetIndex> BaselineProjector<'a, 'e, TL, Target, T, TargetIndex>
where
    TL: LocationSet,
    Target: ChoreographyLocation + Member<TL, TargetIndex>,
    T: SessionTransport<TL, Target>,
{
    /// Creates a projector for `target` running inside `session`.
    pub fn new(target: Target, session: &'a Session<'e, TL, Target, T>) -> Self {
        let _ = target;
        BaselineProjector { session, phantom: PhantomData }
    }

    /// Wraps a value this endpoint holds.
    pub fn local<V>(&self, value: V) -> Located<V, Target> {
        Located::local(value)
    }

    /// The placeholder for another endpoint's value.
    pub fn remote<V, L2, I>(&self, at: L2) -> Located<V, L2>
    where
        L2: ChoreographyLocation + Member<TL, I>,
    {
        let _ = at;
        Located::remote()
    }

    /// Extracts a value this endpoint owns from a result.
    ///
    /// # Panics
    ///
    /// Panics if the value escaped its executor.
    pub fn unwrap<V>(&self, data: Located<V, Target>) -> V {
        data.value.expect("located value absent at its owner")
    }

    /// Projects and runs `choreo` at this endpoint.
    ///
    /// # Panics
    ///
    /// Panics if the transport fails mid-choreography.
    pub fn epp_and_run<V, L, C, LSubsetTL, TargetInL>(&self, choreo: C) -> V
    where
        L: LocationSet + chorus_core::Subset<TL, LSubsetTL>,
        Target: Member<L, TargetInL>,
        C: BaselineChoreography<V, L = L>,
    {
        let op: BaselineEppOp<'a, 'e, L, TL, Target, T> =
            BaselineEppOp { session: self.session, phantom: PhantomData };
        choreo.run(&op)
    }
}

struct BaselineEppOp<'a, 'e, Census, TL, Target, T>
where
    Census: LocationSet,
    TL: LocationSet,
    Target: ChoreographyLocation,
    T: SessionTransport<TL, Target>,
{
    session: &'a Session<'e, TL, Target, T>,
    phantom: PhantomData<fn() -> (Census, TL, Target)>,
}

impl<Census, TL, Target, T> BaselineEppOp<'_, '_, Census, TL, Target, T>
where
    Census: LocationSet,
    TL: LocationSet,
    Target: ChoreographyLocation,
    T: SessionTransport<TL, Target>,
{
    fn send_to<V: Portable>(&self, to: &str, value: &V) {
        self.session
            .send_value(to, value)
            .unwrap_or_else(|e| panic!("failed to send to {to}: {e}"));
    }

    fn receive_from<V: Portable>(&self, from: &str) -> V {
        let bytes = self
            .session
            .receive_payload(from)
            .unwrap_or_else(|e| panic!("failed to receive from {from}: {e}"));
        chorus_wire::from_bytes(&bytes)
            .unwrap_or_else(|e| panic!("failed to decode message from {from}: {e}"))
    }
}

impl<Census, TL, Target, T> HasChorOp<Census> for BaselineEppOp<'_, '_, Census, TL, Target, T>
where
    Census: LocationSet,
    TL: LocationSet,
    Target: ChoreographyLocation,
    T: SessionTransport<TL, Target>,
{
    fn locally<V, L1: ChoreographyLocation, Index>(
        &self,
        _location: L1,
        computation: impl Fn(Unwrapper<L1>) -> V,
    ) -> Located<V, L1>
    where
        L1: Member<Census, Index>,
    {
        if L1::NAME == Target::NAME {
            Located::local(computation(Unwrapper { location: PhantomData }))
        } else {
            Located::remote()
        }
    }

    fn comm<S: ChoreographyLocation, R: ChoreographyLocation, V: Portable, I1, I2>(
        &self,
        _from: S,
        _to: R,
        data: &Located<V, S>,
    ) -> Located<V, R>
    where
        S: Member<Census, I1>,
        R: Member<Census, I2>,
    {
        if S::NAME == Target::NAME && R::NAME == Target::NAME {
            let value = data.value.as_ref().expect("sender holds its value");
            let bytes = chorus_wire::to_bytes(value).expect("encode self-send");
            Located::local(chorus_wire::from_bytes(&bytes).expect("decode self-send"))
        } else if S::NAME == Target::NAME {
            self.send_to(R::NAME, data.value.as_ref().expect("sender holds its value"));
            Located::remote()
        } else if R::NAME == Target::NAME {
            Located::local(self.receive_from(S::NAME))
        } else {
            Located::remote()
        }
    }

    fn cond<S: ChoreographyLocation, V: Portable, R, Index>(
        &self,
        _at: S,
        scrutinee: &Located<V, S>,
        continuation: impl FnOnce(&V) -> R,
    ) -> R
    where
        S: Member<Census, Index>,
    {
        // HasChor semantics: the scrutinee goes to EVERYONE in the
        // census, whether or not they participate in the branches.
        if S::NAME == Target::NAME {
            let value = scrutinee.value.as_ref().expect("scrutinee owner holds its value");
            for name in Census::names() {
                if name != Target::NAME {
                    self.send_to(name, value);
                }
            }
            continuation(value)
        } else {
            let value: V = self.receive_from(S::NAME);
            continuation(&value)
        }
    }
}

/// Centralized runner for baseline choreographies, mirroring
/// `chorus_core::Runner`.
pub struct BaselineRunner<L: LocationSet> {
    census: PhantomData<L>,
}

impl<L: LocationSet> BaselineRunner<L> {
    /// Creates a runner.
    pub fn new() -> Self {
        BaselineRunner { census: PhantomData }
    }

    /// Wraps a value as located at any location.
    pub fn local<V, L1: ChoreographyLocation>(&self, value: V) -> Located<V, L1> {
        Located::local(value)
    }

    /// Extracts the value from a located result.
    pub fn unwrap_located<V, L1>(&self, data: Located<V, L1>) -> V {
        data.value.expect("centralized runner always holds located values")
    }

    /// Runs a choreography under the centralized semantics.
    pub fn run<V, C: BaselineChoreography<V, L = L>>(&self, choreo: C) -> V {
        let op: BaselineRunOp<L> = BaselineRunOp(PhantomData);
        choreo.run(&op)
    }
}

impl<L: LocationSet> Default for BaselineRunner<L> {
    fn default() -> Self {
        Self::new()
    }
}

struct BaselineRunOp<L: LocationSet>(PhantomData<L>);

impl<Census: LocationSet> HasChorOp<Census> for BaselineRunOp<Census> {
    fn locally<V, L1: ChoreographyLocation, Index>(
        &self,
        _location: L1,
        computation: impl Fn(Unwrapper<L1>) -> V,
    ) -> Located<V, L1>
    where
        L1: Member<Census, Index>,
    {
        Located::local(computation(Unwrapper { location: PhantomData }))
    }

    fn comm<S: ChoreographyLocation, R: ChoreographyLocation, V: Portable, I1, I2>(
        &self,
        _from: S,
        _to: R,
        data: &Located<V, S>,
    ) -> Located<V, R>
    where
        S: Member<Census, I1>,
        R: Member<Census, I2>,
    {
        let value = data.value.as_ref().expect("sender holds its value");
        let bytes = chorus_wire::to_bytes(value).expect("encode");
        Located::local(chorus_wire::from_bytes(&bytes).expect("decode"))
    }

    fn cond<S: ChoreographyLocation, V: Portable, R, Index>(
        &self,
        _at: S,
        scrutinee: &Located<V, S>,
        continuation: impl FnOnce(&V) -> R,
    ) -> R
    where
        S: Member<Census, Index>,
    {
        continuation(scrutinee.value.as_ref().expect("scrutinee owner holds its value"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chorus_core::Endpoint;
    use chorus_transport::{LocalTransport, LocalTransportChannel, TransportMetrics};
    use std::sync::Arc;

    chorus_core::locations! { Alice, Bob, Carol }
    type Census = chorus_core::LocationSet!(Alice, Bob, Carol);

    struct PingPong {
        n: Located<u32, Alice>,
    }

    impl BaselineChoreography<Located<u32, Alice>> for PingPong {
        type L = Census;
        fn run(self, op: &impl HasChorOp<Self::L>) -> Located<u32, Alice> {
            let at_bob = op.comm(Alice, Bob, &self.n);
            let doubled = op.locally(Bob, |un| un.unwrap(&at_bob) * 2);
            op.comm(Bob, Alice, &doubled)
        }
    }

    #[test]
    fn runner_executes_comm_and_locally() {
        let runner: BaselineRunner<Census> = BaselineRunner::new();
        let out = runner.run(PingPong { n: runner.local(21) });
        assert_eq!(runner.unwrap_located(out), 42);
    }

    struct Branchy {
        flag: Located<bool, Alice>,
    }

    impl BaselineChoreography<u32> for Branchy {
        type L = Census;
        fn run(self, op: &impl HasChorOp<Self::L>) -> u32 {
            // Carol does nothing in either branch — yet cond sends her
            // the flag anyway. That is the inefficiency the paper fixes.
            op.cond(Alice, &self.flag, |flag| if *flag { 1 } else { 0 })
        }
    }

    #[test]
    fn cond_broadcasts_to_every_party() {
        let channel = LocalTransportChannel::<Census>::new();
        let metrics = Arc::new(TransportMetrics::new());

        let mut handles = Vec::new();
        macro_rules! endpoint {
            ($loc:expr, $ty:ty, $flag:expr) => {{
                let c = channel.clone();
                let m = Arc::clone(&metrics);
                handles.push(std::thread::spawn(move || {
                    let endpoint = Endpoint::builder($loc)
                        .transport(LocalTransport::new($loc, c))
                        .layer(m)
                        .build();
                    let session = endpoint.session();
                    let projector = BaselineProjector::new($loc, &session);
                    let flag: Located<bool, Alice> = $flag(&projector);
                    projector.epp_and_run(Branchy { flag })
                }));
            }};
        }
        endpoint!(Alice, Alice, |p: &BaselineProjector<Census, Alice, _, _>| p.local(true));
        endpoint!(Bob, Bob, |p: &BaselineProjector<Census, Bob, _, _>| p.remote(Alice));
        endpoint!(Carol, Carol, |p: &BaselineProjector<Census, Carol, _, _>| p.remote(Alice));

        for h in handles {
            assert_eq!(h.join().unwrap(), 1);
        }
        // The broadcast reached BOTH Bob and Carol even though Carol is
        // irrelevant to the branch.
        assert_eq!(metrics.messages_to("Bob"), 1);
        assert_eq!(metrics.messages_to("Carol"), 1);
        assert_eq!(metrics.total_messages(), 2);
    }

    #[test]
    fn centralized_cond_runs_the_continuation() {
        let runner: BaselineRunner<Census> = BaselineRunner::new();
        assert_eq!(runner.run(Branchy { flag: runner.local(false) }), 0);
    }
}
