//! The structural cost of the baseline model, measured: without MLVs,
//! branching twice on the same data broadcasts it twice (§3.3's claim
//! in the negative), and every broadcast reaches bystanders.

use chorus_baseline::{BaselineChoreography, BaselineProjector, HasChorOp, Located};
use chorus_core::Endpoint;
use chorus_transport::{LocalTransport, LocalTransportChannel, TransportMetrics};
use std::sync::Arc;

chorus_core::locations! { Decider, Worker, Bystander }
type Census = chorus_core::LocationSet!(Decider, Worker, Bystander);

/// Branches twice on the same flag. HasChor-style `cond` must broadcast
/// the scrutinee each time.
struct DoubleBranch {
    flag: Located<bool, Decider>,
}

impl BaselineChoreography<(u32, u32)> for DoubleBranch {
    type L = Census;
    fn run(self, op: &impl HasChorOp<Self::L>) -> (u32, u32) {
        let first = op.cond(Decider, &self.flag, |f| u32::from(*f));
        let second = op.cond(Decider, &self.flag, |f| u32::from(*f) * 10);
        (first, second)
    }
}

fn run_double_branch() -> ((u32, u32), Arc<TransportMetrics>) {
    let channel = LocalTransportChannel::<Census>::new();
    let metrics = Arc::new(TransportMetrics::new());
    let mut handles = Vec::new();

    macro_rules! endpoint {
        ($ty:ty, $mk_flag:expr) => {{
            let c = channel.clone();
            let m = Arc::clone(&metrics);
            handles.push(std::thread::spawn(move || {
                let endpoint = Endpoint::builder(<$ty>::default())
                    .transport(LocalTransport::new(<$ty>::default(), c))
                    .layer(m)
                    .build();
                let session = endpoint.session();
                let projector = BaselineProjector::new(<$ty>::default(), &session);
                let flag: Located<bool, Decider> = $mk_flag(&projector);
                projector.epp_and_run(DoubleBranch { flag })
            }));
        }};
    }

    endpoint!(Decider, |p: &BaselineProjector<Census, Decider, _, _>| p.local(true));
    endpoint!(Worker, |p: &BaselineProjector<Census, Worker, _, _>| p.remote(Decider));
    endpoint!(Bystander, |p: &BaselineProjector<Census, Bystander, _, _>| p.remote(Decider));

    let results: Vec<(u32, u32)> =
        handles.into_iter().map(|h| h.join().expect("endpoint")).collect();
    let first = results[0];
    assert!(results.iter().all(|r| *r == first), "replicated results must agree");
    (first, metrics)
}

#[test]
fn every_branch_rebroadcasts_to_everyone() {
    let ((first, second), metrics) = run_double_branch();
    assert_eq!((first, second), (1, 10));
    // Two conds × two non-owner recipients each = 4 messages; the MLV
    // library needs 2 (one multicast) and zero to true bystanders.
    assert_eq!(metrics.total_messages(), 4);
    assert_eq!(metrics.messages_to("Worker"), 2);
    assert_eq!(metrics.messages_to("Bystander"), 2);
}
