//! In-tree subset of `serde_derive`.
//!
//! The build environment has no access to crates.io (so no `syn`/`quote`
//! either); this crate parses the item token stream by hand and emits
//! impls as source text. It supports the shapes the workspace actually
//! derives on:
//!
//! * structs with named fields, tuple structs (including newtypes), and
//!   unit structs — optionally with const-generic or simple type
//!   parameters;
//! * enums (non-generic) with unit, newtype, tuple, and struct variants.
//!
//! Unsupported shapes produce a `compile_error!` naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    /// Tuple fields; the payload is the field count.
    Tuple(usize),
    /// Named fields, in declaration order.
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Input {
    name: String,
    /// Generic parameter declarations, verbatim (e.g. `const P: u64`).
    generics_decl: String,
    /// Generic arguments for use sites (e.g. `P`).
    generics_use: String,
    /// Names of plain type parameters (need `Serialize`/`Deserialize` bounds).
    type_params: Vec<String>,
    body: Body,
}

// ---------------------------------------------------------------------------
// Token-level parsing.
// ---------------------------------------------------------------------------

fn is_punct(tt: &TokenTree, c: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(tt: &TokenTree, s: &str) -> bool {
    matches!(tt, TokenTree::Ident(i) if i.to_string() == s)
}

/// Advances past any `#[...]` attributes (including doc comments).
fn skip_attributes(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len()
        && is_punct(&tokens[i], '#')
        && matches!(&tokens[i + 1], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket)
    {
        i += 2;
    }
    i
}

/// Advances past `pub`, `pub(...)`, etc.
fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if i < tokens.len() && is_ident(&tokens[i], "pub") {
        i += 1;
        if i < tokens.len()
            && matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Splits a token slice on top-level commas, tracking `<`/`>` depth so
/// commas inside generic argument lists do not split.
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tt in tokens {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tt.clone());
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    tokens.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(" ")
}

/// Parses one generic parameter chunk into (decl, use, type-param name).
fn parse_generic_param(tokens: &[TokenTree]) -> (String, String, Option<String>) {
    let decl = tokens_to_string(tokens);
    if tokens.is_empty() {
        return (decl, String::new(), None);
    }
    if is_ident(&tokens[0], "const") {
        if let Some(TokenTree::Ident(name)) = tokens.get(1) {
            return (decl, name.to_string(), None);
        }
    }
    if is_punct(&tokens[0], '\'') {
        if let Some(TokenTree::Ident(name)) = tokens.get(1) {
            return (decl, format!("'{name}"), None);
        }
    }
    if let TokenTree::Ident(name) = &tokens[0] {
        return (decl, name.to_string(), Some(name.to_string()));
    }
    (decl, String::new(), None)
}

fn parse_fields_named(group_tokens: &[TokenTree]) -> Vec<String> {
    split_top_level(group_tokens)
        .into_iter()
        .filter_map(|chunk| {
            if chunk.is_empty() {
                return None;
            }
            let mut i = skip_attributes(&chunk, 0);
            i = skip_visibility(&chunk, i);
            match chunk.get(i) {
                Some(TokenTree::Ident(name)) => Some(name.to_string()),
                _ => None,
            }
        })
        .collect()
}

fn parse_fields_tuple(group_tokens: &[TokenTree]) -> usize {
    split_top_level(group_tokens).into_iter().filter(|c| !c.is_empty()).count()
}

fn parse_variants(group_tokens: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for chunk in split_top_level(group_tokens) {
        if chunk.is_empty() {
            continue;
        }
        let i = skip_attributes(&chunk, 0);
        let name = match chunk.get(i) {
            Some(TokenTree::Ident(name)) => name.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        let fields = match chunk.get(i + 1) {
            None => Fields::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Fields::Tuple(parse_fields_tuple(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Fields::Named(parse_fields_named(&inner))
            }
            Some(other) => return Err(format!("unsupported tokens after variant {name}: {other}")),
        };
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attributes(&tokens, 0);
    i = skip_visibility(&tokens, i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" || id.to_string() == "enum" => {
            let k = id.to_string();
            i += 1;
            k
        }
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => {
            i += 1;
            id.to_string()
        }
        other => return Err(format!("expected type name, found {other:?}")),
    };

    // Generics: collect tokens between the outermost < >.
    let mut generic_tokens = Vec::new();
    if tokens.get(i).is_some_and(|t| is_punct(t, '<')) {
        i += 1;
        let mut depth = 1i32;
        while i < tokens.len() {
            if is_punct(&tokens[i], '<') {
                depth += 1;
            } else if is_punct(&tokens[i], '>') {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            generic_tokens.push(tokens[i].clone());
            i += 1;
        }
    }
    let mut decls = Vec::new();
    let mut uses = Vec::new();
    let mut type_params = Vec::new();
    for chunk in split_top_level(&generic_tokens) {
        let (decl, usage, type_param) = parse_generic_param(&chunk);
        decls.push(decl);
        uses.push(usage);
        if let Some(tp) = type_param {
            type_params.push(tp);
        }
    }

    // An explicit `where` clause before the body is not supported.
    if tokens.get(i).is_some_and(|t| is_ident(t, "where")) {
        return Err("where clauses are not supported by the vendored serde_derive".into());
    }

    let body = match (kind.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Body::Struct(Fields::Named(parse_fields_named(&inner)))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Body::Struct(Fields::Tuple(parse_fields_tuple(&inner)))
        }
        ("struct", Some(tt)) if is_punct(tt, ';') => Body::Struct(Fields::Unit),
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            if !type_params.is_empty() || !generic_tokens.is_empty() {
                return Err("generic enums are not supported by the vendored serde_derive".into());
            }
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Body::Enum(parse_variants(&inner)?)
        }
        (_, other) => return Err(format!("unsupported item body: {other:?}")),
    };

    Ok(Input {
        name,
        generics_decl: decls.join(", "),
        generics_use: uses.join(", "),
        type_params,
        body,
    })
}

// ---------------------------------------------------------------------------
// Code generation.
// ---------------------------------------------------------------------------

impl Input {
    /// `Name` or `Name<P>`.
    fn self_ty(&self) -> String {
        if self.generics_use.is_empty() {
            self.name.clone()
        } else {
            format!("{}<{}>", self.name, self.generics_use)
        }
    }

    /// Generic declarations for an impl header, with `extra` prepended.
    fn impl_generics(&self, extra: &str) -> String {
        match (extra.is_empty(), self.generics_decl.is_empty()) {
            (true, true) => String::new(),
            (false, true) => format!("<{extra}>"),
            (true, false) => format!("<{}>", self.generics_decl),
            (false, false) => format!("<{extra}, {}>", self.generics_decl),
        }
    }

    fn where_clause(&self, bound: &str) -> String {
        if self.type_params.is_empty() {
            String::new()
        } else {
            let bounds: Vec<String> =
                self.type_params.iter().map(|p| format!("{p}: {bound}")).collect();
            format!("where {}", bounds.join(", "))
        }
    }
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let self_ty = input.self_ty();
    let body = match &input.body {
        Body::Struct(Fields::Unit) => {
            format!("__serializer.serialize_unit_struct(\"{name}\")")
        }
        Body::Struct(Fields::Tuple(1)) => {
            format!("__serializer.serialize_newtype_struct(\"{name}\", &self.0)")
        }
        Body::Struct(Fields::Tuple(n)) => {
            let mut s = format!(
                "let mut __st = ::serde::Serializer::serialize_tuple_struct(__serializer, \"{name}\", {n})?;\n"
            );
            for i in 0..*n {
                s.push_str(&format!(
                    "::serde::ser::SerializeTupleStruct::serialize_field(&mut __st, &self.{i})?;\n"
                ));
            }
            s.push_str("::serde::ser::SerializeTupleStruct::end(__st)");
            s
        }
        Body::Struct(Fields::Named(fields)) => {
            let mut s = format!(
                "let mut __st = ::serde::Serializer::serialize_struct(__serializer, \"{name}\", {})?;\n",
                fields.len()
            );
            for f in fields {
                s.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __st, \"{f}\", &self.{f})?;\n"
                ));
            }
            s.push_str("::serde::ser::SerializeStruct::end(__st)");
            s
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => __serializer.serialize_unit_variant(\"{name}\", {idx}u32, \"{vname}\"),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => __serializer.serialize_newtype_variant(\"{name}\", {idx}u32, \"{vname}\", __f0),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let mut arm = format!(
                            "{name}::{vname}({}) => {{\nlet mut __st = ::serde::Serializer::serialize_tuple_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\", {n})?;\n",
                            binders.join(", ")
                        );
                        for b in &binders {
                            arm.push_str(&format!(
                                "::serde::ser::SerializeTupleVariant::serialize_field(&mut __st, {b})?;\n"
                            ));
                        }
                        arm.push_str("::serde::ser::SerializeTupleVariant::end(__st)\n},\n");
                        arms.push_str(&arm);
                    }
                    Fields::Named(fields) => {
                        let mut arm = format!(
                            "{name}::{vname} {{ {} }} => {{\nlet mut __st = ::serde::Serializer::serialize_struct_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\", {})?;\n",
                            fields.join(", "),
                            fields.len()
                        );
                        for f in fields {
                            arm.push_str(&format!(
                                "::serde::ser::SerializeStructVariant::serialize_field(&mut __st, \"{f}\", {f})?;\n"
                            ));
                        }
                        arm.push_str("::serde::ser::SerializeStructVariant::end(__st)\n},\n");
                        arms.push_str(&arm);
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };

    format!(
        "#[automatically_derived]\n\
         impl{generics} ::serde::Serialize for {self_ty} {where_clause} {{\n\
             fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) \
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}",
        generics = input.impl_generics(""),
        where_clause = input.where_clause("::serde::Serialize"),
    )
}

/// Emits a `visit_seq` body constructing `ctor` from `n` positional
/// elements (for tuples) or from `fields` (for named fields).
fn visit_seq_body(ctor: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!("::core::result::Result::Ok({ctor})"),
        Fields::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::__private::next_element(&mut __seq, {i})?"))
                .collect();
            format!("::core::result::Result::Ok({ctor}({}))", elems.join(", "))
        }
        Fields::Named(names) => {
            let elems: Vec<String> = names
                .iter()
                .enumerate()
                .map(|(i, f)| format!("{f}: ::serde::__private::next_element(&mut __seq, {i})?"))
                .collect();
            format!("::core::result::Result::Ok({ctor} {{ {} }})", elems.join(", "))
        }
    }
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let self_ty = input.self_ty();
    let phantom_tys = if input.type_params.is_empty() {
        "()".to_string()
    } else {
        format!("({},)", input.type_params.join(", "))
    };
    let visitor_decl = format!(
        "struct __Visitor{generics}(::core::marker::PhantomData<fn() -> {phantom_tys}>);",
        generics = input.impl_generics(""),
    );
    let visitor_use = if input.generics_use.is_empty() {
        "__Visitor(::core::marker::PhantomData)".to_string()
    } else {
        format!("__Visitor::<{}>(::core::marker::PhantomData)", input.generics_use)
    };

    let (visit_methods, entry) = match &input.body {
        Body::Struct(Fields::Unit) => (
            format!(
                "fn visit_unit<__E: ::serde::de::Error>(self) -> ::core::result::Result<Self::Value, __E> {{\n\
                     ::core::result::Result::Ok({name})\n\
                 }}"
            ),
            format!("__deserializer.deserialize_unit_struct(\"{name}\", {visitor_use})"),
        ),
        Body::Struct(Fields::Tuple(1)) => (
            format!(
                "fn visit_newtype_struct<__D2: ::serde::Deserializer<'de>>(self, __d: __D2) \
                     -> ::core::result::Result<Self::Value, __D2::Error> {{\n\
                     ::core::result::Result::Ok({name}(::serde::Deserialize::deserialize(__d)?))\n\
                 }}\n\
                 fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A) \
                     -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                     {seq_body}\n\
                 }}",
                seq_body = visit_seq_body(name, &Fields::Tuple(1)),
            ),
            format!("__deserializer.deserialize_newtype_struct(\"{name}\", {visitor_use})"),
        ),
        Body::Struct(fields @ Fields::Tuple(n)) => (
            format!(
                "fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A) \
                     -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                     {seq_body}\n\
                 }}",
                seq_body = visit_seq_body(name, fields),
            ),
            format!("__deserializer.deserialize_tuple_struct(\"{name}\", {n}, {visitor_use})"),
        ),
        Body::Struct(fields @ Fields::Named(names)) => {
            let field_names: Vec<String> = names.iter().map(|f| format!("\"{f}\"")).collect();
            (
                format!(
                    "fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A) \
                         -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                         {seq_body}\n\
                     }}",
                    seq_body = visit_seq_body(name, fields),
                ),
                format!(
                    "__deserializer.deserialize_struct(\"{name}\", &[{}], {visitor_use})",
                    field_names.join(", ")
                ),
            )
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                let ctor = format!("{name}::{vname}");
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{idx}u32 => {{ ::serde::de::VariantAccess::unit_variant(__variant)?; \
                         ::core::result::Result::Ok({ctor}) }},\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{idx}u32 => ::core::result::Result::Ok({ctor}(\
                         ::serde::de::VariantAccess::newtype_variant(__variant)?)),\n"
                    )),
                    fields => {
                        let seq_body = visit_seq_body(&ctor, fields);
                        let call = match fields {
                            Fields::Tuple(n) => format!(
                                "::serde::de::VariantAccess::tuple_variant(__variant, {n}, __V{idx})"
                            ),
                            Fields::Named(names) => {
                                let fns: Vec<String> =
                                    names.iter().map(|f| format!("\"{f}\"")).collect();
                                format!(
                                    "::serde::de::VariantAccess::struct_variant(__variant, &[{}], __V{idx})",
                                    fns.join(", ")
                                )
                            }
                            Fields::Unit => unreachable!(),
                        };
                        arms.push_str(&format!(
                            "{idx}u32 => {{\n\
                             struct __V{idx};\n\
                             impl<'de> ::serde::de::Visitor<'de> for __V{idx} {{\n\
                                 type Value = {name};\n\
                                 fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                                     __f.write_str(\"variant {vname} of {name}\")\n\
                                 }}\n\
                                 fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A) \
                                     -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                                     {seq_body}\n\
                                 }}\n\
                             }}\n\
                             {call}\n\
                             }},\n"
                        ));
                    }
                }
            }
            let variant_names: Vec<String> =
                variants.iter().map(|v| format!("\"{}\"", v.name)).collect();
            (
                format!(
                    "fn visit_enum<__A: ::serde::de::EnumAccess<'de>>(self, __data: __A) \
                         -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                         let (__idx, __variant) = ::serde::de::EnumAccess::variant::<u32>(__data)?;\n\
                         match __idx {{\n\
                             {arms}\
                             __other => ::core::result::Result::Err(::serde::de::Error::custom(\
                                 format_args!(\"unknown variant index {{}} for {name}\", __other))),\n\
                         }}\n\
                     }}"
                ),
                format!(
                    "__deserializer.deserialize_enum(\"{name}\", &[{}], {visitor_use})",
                    variant_names.join(", ")
                ),
            )
        }
    };

    format!(
        "#[automatically_derived]\n\
         impl{generics} ::serde::Deserialize<'de> for {self_ty} {where_clause} {{\n\
             fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D) \
                 -> ::core::result::Result<Self, __D::Error> {{\n\
                 {visitor_decl}\n\
                 impl{visitor_generics} ::serde::de::Visitor<'de> for __Visitor{visitor_ty_args} {where_clause} {{\n\
                     type Value = {self_ty};\n\
                     fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                         __f.write_str(\"{name}\")\n\
                     }}\n\
                     {visit_methods}\n\
                 }}\n\
                 {entry}\n\
             }}\n\
         }}",
        generics = input.impl_generics("'de"),
        visitor_generics = input.impl_generics("'de"),
        visitor_ty_args = if input.generics_use.is_empty() {
            String::new()
        } else {
            format!("<{}>", input.generics_use)
        },
        where_clause = input.where_clause("::serde::Deserialize<'de>"),
    )
}

fn expand(input: TokenStream, gen: fn(&Input) -> String) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen(&parsed)
            .parse()
            .unwrap_or_else(|e| error_tokens(&format!("serde_derive shim emitted bad code: {e}"))),
        Err(msg) => error_tokens(&msg),
    }
}

fn error_tokens(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("compile_error literal")
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}
