//! In-tree, API-compatible subset of the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this shim
//! provides exactly the surface the workspace uses: the [`BufMut`]
//! little-endian put methods, a cheaply-cloneable shared byte buffer
//! ([`Bytes`]) and a growable builder that freezes into one
//! ([`BytesMut`]).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A growable buffer that integers and floats can be appended to.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a single byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a single signed byte.
    fn put_i8(&mut self, v: i8) {
        self.put_slice(&[v as u8]);
    }

    /// Appends `v` in little-endian order.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends `v` in little-endian order.
    fn put_i16_le(&mut self, v: i16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends `v` in little-endian order.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends `v` in little-endian order.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends `v` in little-endian order.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends `v` in little-endian order.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends `v` in little-endian order.
    fn put_u128_le(&mut self, v: u128) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends `v` in little-endian order.
    fn put_i128_le(&mut self, v: i128) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends `v` in little-endian order.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends `v` in little-endian order.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// The backing storage of a [`Bytes`].
///
/// Two variants so both construction paths stay single-allocation:
/// `Slice` packs refcounts and data into one block (built by copying a
/// slice), `Vec` adopts an existing `Vec<u8>` without copying it (one
/// allocation for the shared header only).
#[derive(Debug, Clone)]
enum Storage {
    Slice(Arc<[u8]>),
    Vec(Arc<Vec<u8>>),
}

impl Storage {
    fn as_slice(&self) -> &[u8] {
        match self {
            Storage::Slice(data) => data,
            Storage::Vec(data) => data,
        }
    }
}

/// A cheaply-cloneable, immutable, reference-counted byte buffer.
///
/// Cloning and [slicing](Bytes::slice) never copy or allocate: every
/// clone and sub-slice shares the same backing storage. This is what
/// lets one encoded payload fan out to many destinations — and be kept
/// by the sender — for free.
#[derive(Clone)]
pub struct Bytes {
    data: Storage,
    offset: usize,
    len: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes { data: Storage::Slice(Arc::from(&[][..])), offset: 0, len: 0 }
    }

    /// Copies `src` into a freshly allocated shared buffer.
    ///
    /// Exactly one allocation: the refcount header and the data live in
    /// a single block.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes { data: Storage::Slice(Arc::from(src)), offset: 0, len: src.len() }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a view of the bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data.as_slice()[self.offset..self.offset + self.len]
    }

    /// Returns a sub-slice sharing this buffer's storage — no copy, no
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(start <= end, "slice start {start} past end {end}");
        assert!(end <= self.len, "slice end {end} past buffer length {}", self.len);
        Bytes { data: self.data.clone(), offset: self.offset + start, len: end - start }
    }

    /// Copies the bytes into a new `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    /// Adopts `vec` without copying its contents (one allocation for
    /// the shared refcount header).
    fn from(vec: Vec<u8>) -> Self {
        let len = vec.len();
        Bytes { data: Storage::Vec(Arc::new(vec)), offset: 0, len }
    }
}

impl From<&[u8]> for Bytes {
    fn from(src: &[u8]) -> Self {
        Bytes::copy_from_slice(src)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(src: &[u8; N]) -> Self {
        Bytes::copy_from_slice(src)
    }
}

impl From<BytesMut> for Bytes {
    fn from(buf: BytesMut) -> Self {
        buf.freeze()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable, uniquely-owned byte buffer that can be frozen into a
/// shared [`Bytes`] without copying the data.
///
/// Used as the reusable scratch/send buffer on encode paths: build the
/// frame with the [`BufMut`] methods, hand the result off with
/// [`freeze`](BytesMut::freeze) or write it out and [`clear`] for the
/// next frame.
///
/// [`clear`]: BytesMut::clear
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { vec: Vec::with_capacity(capacity) }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Total capacity of the underlying storage.
    pub fn capacity(&self) -> usize {
        self.vec.capacity()
    }

    /// Ensures room for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.vec.reserve(additional);
    }

    /// Clears the contents, keeping the capacity for reuse.
    pub fn clear(&mut self) {
        self.vec.clear();
    }

    /// Appends raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }

    /// Returns a view of the bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.vec
    }

    /// Converts into a shared [`Bytes`] without copying the data (one
    /// allocation for the shared refcount header).
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }

    /// Consumes the buffer and returns the underlying `Vec<u8>`.
    pub fn into_vec(self) -> Vec<u8> {
        self.vec
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(vec: Vec<u8>) -> Self {
        BytesMut { vec }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_puts_match_to_le_bytes() {
        let mut out = Vec::new();
        out.put_u8(0xAB);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_u16_le(0x0102);
        assert_eq!(out, vec![0xAB, 0xEF, 0xBE, 0xAD, 0xDE, 0x02, 0x01]);
    }

    #[test]
    fn bytes_clone_and_slice_share_storage() {
        let bytes = Bytes::copy_from_slice(b"hello world");
        let clone = bytes.clone();
        let hello = bytes.slice(0..5);
        let world = bytes.slice(6..);
        assert_eq!(clone, b"hello world");
        assert_eq!(hello, b"hello");
        assert_eq!(world, b"world");
        // Sub-slices of sub-slices stay consistent.
        assert_eq!(world.slice(1..3), b"or");
    }

    #[test]
    fn bytes_from_vec_does_not_copy_semantics() {
        let bytes = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(bytes.len(), 3);
        assert_eq!(bytes, vec![1u8, 2, 3]);
        assert_eq!(bytes.to_vec(), vec![1u8, 2, 3]);
    }

    #[test]
    fn empty_bytes_behave() {
        let empty = Bytes::new();
        assert!(empty.is_empty());
        assert_eq!(empty.slice(..), empty);
        assert_eq!(Bytes::default(), empty);
    }

    #[test]
    #[should_panic(expected = "past buffer length")]
    fn out_of_bounds_slice_panics() {
        let _ = Bytes::copy_from_slice(b"ab").slice(0..3);
    }

    #[test]
    fn bytes_mut_builds_and_freezes() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32_le(7);
        buf.extend_from_slice(b"xy");
        assert_eq!(buf.len(), 6);
        let frozen = buf.freeze();
        assert_eq!(frozen, [7u8, 0, 0, 0, b'x', b'y']);
    }

    #[test]
    fn bytes_mut_clear_keeps_capacity() {
        let mut buf = BytesMut::with_capacity(64);
        buf.extend_from_slice(&[0u8; 48]);
        buf.clear();
        assert!(buf.is_empty());
        assert!(buf.capacity() >= 64);
    }
}
