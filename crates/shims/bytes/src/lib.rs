//! In-tree, API-compatible subset of the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this shim
//! provides exactly the surface the workspace uses: the [`BufMut`]
//! little-endian put methods on `Vec<u8>`.

/// A growable buffer that integers and floats can be appended to.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a single byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a single signed byte.
    fn put_i8(&mut self, v: i8) {
        self.put_slice(&[v as u8]);
    }

    /// Appends `v` in little-endian order.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends `v` in little-endian order.
    fn put_i16_le(&mut self, v: i16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends `v` in little-endian order.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends `v` in little-endian order.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends `v` in little-endian order.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends `v` in little-endian order.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends `v` in little-endian order.
    fn put_u128_le(&mut self, v: u128) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends `v` in little-endian order.
    fn put_i128_le(&mut self, v: i128) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends `v` in little-endian order.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends `v` in little-endian order.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_puts_match_to_le_bytes() {
        let mut out = Vec::new();
        out.put_u8(0xAB);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_u16_le(0x0102);
        assert_eq!(out, vec![0xAB, 0xEF, 0xBE, 0xAD, 0xDE, 0x02, 0x01]);
    }
}
