//! The [`any`] entry point and the [`Arbitrary`] trait behind it.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng as _;
use std::marker::PhantomData;

/// A type with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen::<$ty>()
                }
            }
        )*
    };
}

impl_arbitrary_int!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, u128, i128);

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Arbitrary bit patterns: exercises infinities, NaNs, subnormals.
        f32::from_bits(rng.gen::<u32>())
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.gen::<u64>())
    }
}

/// Generates an arbitrary Unicode scalar value.
pub(crate) fn arbitrary_scalar(rng: &mut TestRng) -> char {
    loop {
        let raw = rng.gen_range(0u32..=0x10_FFFF);
        if let Some(c) = char::from_u32(raw) {
            return c;
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        arbitrary_scalar(rng)
    }
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let len = rng.gen_range(0usize..32);
        (0..len).map(|_| arbitrary_scalar(rng)).collect()
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}

impl_arbitrary_tuple!(A);
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);
impl_arbitrary_tuple!(A, B, C, D, E);
impl_arbitrary_tuple!(A, B, C, D, E, F);
impl_arbitrary_tuple!(A, B, C, D, E, F, G);
impl_arbitrary_tuple!(A, B, C, D, E, F, G, H);
