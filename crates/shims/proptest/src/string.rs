//! `&str` patterns as string strategies.
//!
//! The real crate interprets a `&str` strategy as a full regex. This
//! shim supports the patterns the workspace uses — `.{a,b}` (between
//! `a` and `b` arbitrary characters) — and falls back to "0 to 32
//! arbitrary characters" for anything else it cannot parse.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng as _;

/// A small pool mixing ASCII with multi-byte scalars so UTF-8 handling
/// gets exercised.
const CHAR_POOL: &[char] = &[
    'a', 'b', 'c', 'x', 'y', 'z', 'A', 'Z', '0', '9', ' ', '-', '_', '.', ',', '!', 'é', 'ß', 'λ',
    'Ω', '中', '🦀',
];

fn arbitrary_char(rng: &mut TestRng) -> char {
    if rng.gen_bool(0.8) {
        CHAR_POOL[rng.gen_range(0..CHAR_POOL.len())]
    } else {
        crate::arbitrary::arbitrary_scalar(rng)
    }
}

/// Parses `.{a,b}` into `(a, b)`.
fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_dot_repeat(self).unwrap_or((0, 32));
        let len = rng.gen_range(lo..=hi);
        (0..len).map(|_| arbitrary_char(rng)).collect()
    }
}
