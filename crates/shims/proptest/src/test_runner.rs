//! Test-runner configuration, errors, and the `proptest!` macros.

/// The RNG handed to strategies.
pub type TestRng = rand::rngs::StdRng;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The base seed for this run (from `PROPTEST_SEED` or entropy).
    pub fn resolve_seed(&self) -> u64 {
        crate::entropy_seed()
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the full suite fast
        // while still exercising each property broadly.
        ProptestConfig { cases: 64 }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(message: String) -> Self {
        TestCaseError(message)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Defines property tests: each `fn` runs its body against many random
/// inputs drawn from the given strategies.
///
/// Parameters may be `name in strategy` or `name: Type` (shorthand for
/// `name in any::<Type>()`); an optional leading
/// `#![proptest_config(expr)]` sets the case count.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_case!{ @cfg($cfg) @name($name) @body($body) @acc() $($params)* }
        }
        $crate::__proptest_fns!{ @cfg($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // `name: Type` shorthand, more parameters follow.
    (@cfg($cfg:expr) @name($name:ident) @body($body:block) @acc($($acc:tt)*)
     $p:ident : $t:ty, $($rest:tt)*) => {
        $crate::__proptest_case!{ @cfg($cfg) @name($name) @body($body)
            @acc($($acc)* ($p => $crate::arbitrary::any::<$t>())) $($rest)* }
    };
    // `name: Type` shorthand, final parameter.
    (@cfg($cfg:expr) @name($name:ident) @body($body:block) @acc($($acc:tt)*)
     $p:ident : $t:ty) => {
        $crate::__proptest_case!{ @cfg($cfg) @name($name) @body($body)
            @acc($($acc)* ($p => $crate::arbitrary::any::<$t>())) }
    };
    // `pattern in strategy`, more parameters follow.
    (@cfg($cfg:expr) @name($name:ident) @body($body:block) @acc($($acc:tt)*)
     $p:pat in $s:expr, $($rest:tt)*) => {
        $crate::__proptest_case!{ @cfg($cfg) @name($name) @body($body)
            @acc($($acc)* ($p => $s)) $($rest)* }
    };
    // `pattern in strategy`, final parameter.
    (@cfg($cfg:expr) @name($name:ident) @body($body:block) @acc($($acc:tt)*)
     $p:pat in $s:expr) => {
        $crate::__proptest_case!{ @cfg($cfg) @name($name) @body($body)
            @acc($($acc)* ($p => $s)) }
    };
    // All parameters consumed: run the property.
    (@cfg($cfg:expr) @name($name:ident) @body($body:block)
     @acc($(($p:pat => $s:expr))+)) => {
        $crate::run_property(
            stringify!($name),
            &$cfg,
            ($($s,)+),
            |($($p,)+)| -> ::core::result::Result<(), $crate::TestCaseError> {
                $body
                ::core::result::Result::Ok(())
            },
        )
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __left, __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), __left, __right
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left != *__right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __left
        );
    }};
}

/// Skips cases that do not satisfy a precondition.
///
/// The real crate regenerates rejected cases; this shim simply treats
/// them as passing, which is sound for the loose preconditions used in
/// this workspace (e.g. `x != y` for random 64-bit values).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}
