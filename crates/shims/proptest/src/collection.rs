//! Collection strategies: `vec` and `btree_map`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng as _;
use std::collections::BTreeMap;
use std::ops::Range;

/// A strategy for `Vec<T>` with a length drawn from `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len =
            if self.len.is_empty() { self.len.start } else { rng.gen_range(self.len.clone()) };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `BTreeMap<K, V>` with a size drawn from `size`.
///
/// Key collisions mean the generated map may be smaller than the drawn
/// size, matching the real crate's behavior.
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: Range<usize>,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    BTreeMapStrategy { key, value, size }
}

/// The strategy returned by [`btree_map`].
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: Range<usize>,
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let size =
            if self.size.is_empty() { self.size.start } else { rng.gen_range(self.size.clone()) };
        (0..size).map(|_| (self.key.generate(rng), self.value.generate(rng))).collect()
    }
}
