//! The `Option` strategy combinator.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng as _;

/// A strategy for `Option<T>`: `Some` three times out of four.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// The strategy returned by [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.gen_bool(0.75) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}
