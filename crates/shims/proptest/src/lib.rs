//! In-tree, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this shim
//! reimplements the property-testing surface the workspace uses:
//! [`Strategy`] with `prop_map`/`prop_recursive`/`boxed`, [`any`],
//! ranges and `&str` patterns as strategies, [`collection`] and
//! [`option`] combinators, and the [`proptest!`]/`prop_assert*` macros.
//!
//! Unlike the real crate there is **no shrinking**: a failing case is
//! reported with its seed so it can be replayed by fixing
//! `PROPTEST_SEED`, but it is not minimized. Cases are generated from a
//! fresh random seed per run (override with the `PROPTEST_SEED`
//! environment variable for reproduction).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::rc::Rc;

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Everything a test module usually imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` module alias (e.g. `prop::collection::vec`).
    pub use crate as prop;
}

pub use crate as prop;

/// Runs one property: `cases` random inputs drawn from `strategy`, each
/// passed to `test`. Called by the [`proptest!`] macro expansion.
pub fn run_property<S: Strategy>(
    name: &str,
    config: &ProptestConfig,
    strategy: S,
    mut test: impl FnMut(S::Value) -> Result<(), TestCaseError>,
) {
    let base_seed = config.resolve_seed();
    for case in 0..config.cases {
        let mut rng = <TestRng as SeedableRng>::seed_from_u64(base_seed.wrapping_add(case as u64));
        let input = strategy.generate(&mut rng);
        if let Err(err) = test(input) {
            panic!(
                "property `{name}` failed at case {case} \
                 (replay with PROPTEST_SEED={base_seed}): {err}"
            );
        }
    }
}

/// Returns a per-run base seed: `PROPTEST_SEED` if set, otherwise random.
pub(crate) fn entropy_seed() -> u64 {
    match std::env::var("PROPTEST_SEED") {
        Ok(s) => s.parse().unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got {s:?}")),
        Err(_) => rand::thread_rng().gen::<u64>(),
    }
}

/// Internal: boxes a strategy into a clonable trait object.
pub(crate) fn boxed_from<S: Strategy + 'static>(strategy: S) -> BoxedStrategy<S::Value> {
    BoxedStrategy { inner: Rc::new(move |rng: &mut StdRng| strategy.generate(rng)) }
}
