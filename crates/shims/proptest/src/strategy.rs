//! The [`Strategy`] trait and core combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Unlike the real crate there is no value tree / shrinking: a strategy
/// is simply a function from randomness to a value.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `self` generates leaves, and `f`
    /// wraps an inner strategy into a branch, up to `depth` levels.
    ///
    /// The `desired_size` and `expected_branch_size` tuning knobs of the
    /// real crate are accepted and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let branch = crate::boxed_from(f(current));
            current = BoxedStrategy {
                inner: {
                    let leaf = leaf.clone();
                    Rc::new(move |rng: &mut TestRng| {
                        use rand::Rng as _;
                        // Lean toward leaves so sizes stay bounded.
                        if rng.gen_bool(0.5) {
                            leaf.generate(rng)
                        } else {
                            branch.generate(rng)
                        }
                    })
                },
            };
        }
        current
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        crate::boxed_from(self)
    }
}

/// A clonable, type-erased strategy.
pub struct BoxedStrategy<T> {
    pub(crate) inner: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { inner: Rc::clone(&self.inner) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Chooses uniformly among several strategies of the same value type
/// (the engine behind `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! requires at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        use rand::Rng as _;
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Chooses uniformly among the given strategies (all generating the
/// same type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

// ---------------------------------------------------------------------------
// Ranges as strategies.
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    use rand::Rng as _;
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    use rand::Rng as _;
                    rng.gen_range(self.clone())
                }
            }
        )*
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize);

// ---------------------------------------------------------------------------
// Tuples of strategies are strategies.
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident . $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
