//! In-tree, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so this shim
//! provides the surface the workspace uses: the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), a seedable [`rngs::StdRng`], and
//! [`thread_rng`]. The generator is SplitMix64 — statistically solid for
//! tests and simulations, *not* cryptographically secure (neither is
//! what the real crate's `StdRng` promises to stay, and none of the
//! workspace's uses require it: the MPC protocols model honest-but-
//! curious parties in tests).

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A type that can be sampled uniformly from an `Rng` (the `Standard`
/// distribution of the real crate).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_uint {
    ($($ty:ty),*) => {
        $(
            impl Standard for $ty {
                fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                    rng.next_u64() as $ty
                }
            }
        )*
    };
}

impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($ty:ty),*) => {
        $(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end - self.start) as u64;
                    // Lemire's multiply-shift; bias is negligible for the
                    // spans used in this workspace's tests.
                    let value = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    self.start + value as $ty
                }
            }

            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    if start == 0 && end as u128 == <$ty>::MAX as u128 {
                        return rng.next_u64() as $ty;
                    }
                    let span = (end - start) as u64 + 1;
                    let value = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    start + value as $ty
                }
            }
        )*
    };
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

/// The user-facing extension trait: sampling methods for any generator.
pub trait Rng: RngCore {
    /// Samples a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seedable generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// A lazily seeded per-thread generator.
    #[derive(Debug)]
    pub struct ThreadRng {
        inner: StdRng,
    }

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }

    pub(crate) fn fresh_thread_rng() -> ThreadRng {
        use std::hash::{BuildHasher, Hasher};
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0);
        // RandomState folds in OS-provided per-process entropy.
        let mut hasher = std::collections::hash_map::RandomState::new().build_hasher();
        hasher.write_u64(nanos);
        hasher.write_u64(COUNTER.fetch_add(1, Ordering::Relaxed));
        ThreadRng { inner: StdRng::seed_from_u64(hasher.finish()) }
    }
}

/// Returns a freshly seeded per-call generator.
///
/// Unlike the real crate this does not cache per thread, which keeps the
/// shim dependency-free; every call site in this workspace draws only a
/// handful of values per `thread_rng()` call.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::fresh_thread_rng()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_sequences_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1u64..=3);
            assert!((1..=3).contains(&w));
            let u = rng.gen_range(0usize..7);
            assert!(u < 7);
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(2);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "suspicious coin: {heads}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(1);
        assert_ne!(
            (0..8).map(|_| a.gen::<u64>()).collect::<Vec<_>>(),
            (0..8).map(|_| b.gen::<u64>()).collect::<Vec<_>>()
        );
    }
}
