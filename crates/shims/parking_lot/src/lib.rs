//! In-tree, API-compatible subset of the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this shim wraps
//! the standard-library lock types with `parking_lot`'s non-poisoning
//! interface: `lock()` returns a guard directly, and a panic while a
//! guard is held does not poison the lock for later users.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A non-poisoning mutual-exclusion lock.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    ///
    /// Unlike `std`, a poisoned lock (a previous holder panicked) is
    /// recovered transparently.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner);
        MutexGuard { inner }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(inner) => Some(MutexGuard { inner }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard { inner: p.into_inner() }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the inner value, without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn panicking_holder_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
