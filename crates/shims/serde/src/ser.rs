//! The serialization half of the data model.

use std::fmt::Display;

/// Error bound for serializers.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can be turned into the serde data model.
pub trait Serialize {
    /// Serializes `self` into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A format backend receiving the serde data model.
pub trait Serializer: Sized {
    /// Value produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;

    /// Compound serializer for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for tuples.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for tuple structs.
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for tuple enum variants.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for maps.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for struct enum variants.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i8`.
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i16`.
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i32`.
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i64`.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i128`.
    fn serialize_i128(self, v: i128) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u8`.
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u16`.
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u32`.
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u128`.
    fn serialize_u128(self, v: u128) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `f32`.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `char`.
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a byte slice.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Option::None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Option::Some(value)`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serializes `()`.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit struct.
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a dataless enum variant.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a single-field tuple struct.
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a single-field tuple variant.
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begins a variable-length sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins a fixed-length heterogeneous sequence.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    /// Begins a tuple struct.
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    /// Begins a tuple enum variant.
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    /// Begins a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begins a struct.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begins a struct enum variant.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;

    /// Whether this format is human readable. Defaults to `true`.
    fn is_human_readable(&self) -> bool {
        true
    }
}

/// Compound serializer returned by [`Serializer::serialize_seq`].
pub trait SerializeSeq {
    /// Value produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Serializes one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_tuple`].
pub trait SerializeTuple {
    /// Value produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Serializes one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the tuple.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_tuple_struct`].
pub trait SerializeTupleStruct {
    /// Value produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Serializes one field.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the tuple struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_tuple_variant`].
pub trait SerializeTupleVariant {
    /// Value produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Serializes one field.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the tuple variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_map`].
pub trait SerializeMap {
    /// Value produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Serializes one key.
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Self::Error>;
    /// Serializes one value.
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Serializes one key-value entry.
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error> {
        self.serialize_key(key)?;
        self.serialize_value(value)
    }
    /// Finishes the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_struct`].
pub trait SerializeStruct {
    /// Value produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Serializes one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_struct_variant`].
pub trait SerializeStructVariant {
    /// Value produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Serializes one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the struct variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for std types.
// ---------------------------------------------------------------------------

macro_rules! primitive_serialize {
    ($($ty:ty => $method:ident,)*) => {
        $(
            impl Serialize for $ty {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    serializer.$method(*self)
                }
            }
        )*
    };
}

primitive_serialize! {
    bool => serialize_bool,
    i8 => serialize_i8,
    i16 => serialize_i16,
    i32 => serialize_i32,
    i64 => serialize_i64,
    i128 => serialize_i128,
    u8 => serialize_u8,
    u16 => serialize_u16,
    u32 => serialize_u32,
    u64 => serialize_u64,
    u128 => serialize_u128,
    f32 => serialize_f32,
    f64 => serialize_f64,
    char => serialize_char,
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(value) => serializer.serialize_some(value),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut tuple = serializer.serialize_tuple(N)?;
        for item in self {
            tuple.serialize_element(item)?;
        }
        tuple.end()
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for std::collections::HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

macro_rules! tuple_serialize {
    ($(($len:expr => $($name:ident . $idx:tt),+),)*) => {
        $(
            impl<$($name: Serialize),+> Serialize for ($($name,)+) {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    let mut tuple = serializer.serialize_tuple($len)?;
                    $(tuple.serialize_element(&self.$idx)?;)+
                    tuple.end()
                }
            }
        )*
    };
}

tuple_serialize! {
    (1 => A.0),
    (2 => A.0, B.1),
    (3 => A.0, B.1, C.2),
    (4 => A.0, B.1, C.2, D.3),
    (5 => A.0, B.1, C.2, D.3, E.4),
    (6 => A.0, B.1, C.2, D.3, E.4, F.5),
    (7 => A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (8 => A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
}
