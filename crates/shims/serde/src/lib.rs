//! In-tree, API-compatible subset of the `serde` crate.
//!
//! The build environment has no access to crates.io, so this shim
//! reimplements the slice of serde's data model that this workspace
//! exercises: the [`ser`] and [`de`] trait hierarchies, impls for the
//! std types that cross choreography boundaries, and the
//! `#[derive(Serialize, Deserialize)]` macros (re-exported from the
//! sibling `serde_derive` proc-macro crate).
//!
//! The data model, method names, and call protocols deliberately mirror
//! real serde so that `chorus-wire`'s `Serializer`/`Deserializer`
//! implementations compile unchanged against either.

pub mod de;
pub mod ser;

#[doc(hidden)]
pub mod __private;

pub use de::{Deserialize, DeserializeOwned, Deserializer};
pub use ser::{Serialize, Serializer};
pub use serde_derive::{Deserialize, Serialize};
