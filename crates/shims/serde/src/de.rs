//! The deserialization half of the data model.

use std::fmt::{self, Display};
use std::marker::PhantomData;

pub mod value;

/// Error bound for deserializers.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;

    /// A value had the right shape but wrong content.
    fn invalid_value(got: &dyn Display, expected: &dyn Display) -> Self {
        Error::custom(format_args!("invalid value {got}, expected {expected}"))
    }

    /// A compound had the wrong number of elements.
    fn invalid_length(len: usize, expected: &dyn Display) -> Self {
        Error::custom(format_args!("invalid length {len}, expected {expected}"))
    }

    /// An enum carried an unknown variant tag.
    fn unknown_variant(variant: &dyn Display, expected: &'static [&'static str]) -> Self {
        Error::custom(format_args!("unknown variant {variant}, expected one of {expected:?}"))
    }
}

/// A type constructible from the serde data model, borrowing from the
/// input with lifetime `'de`.
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from `deserializer`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A type deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// A stateful deserialization target; the stateless case is
/// `PhantomData<T>`, which simply deserializes a `T`.
pub trait DeserializeSeed<'de>: Sized {
    /// The value produced.
    type Value;
    /// Deserializes the value from `deserializer`.
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<T, D::Error> {
        T::deserialize(deserializer)
    }
}

/// A format backend producing the serde data model.
pub trait Deserializer<'de>: Sized {
    /// Error produced on failure.
    type Error: Error;

    /// Deserializes a value of unknown shape (self-describing formats only).
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `bool`.
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i8`.
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i16`.
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i32`.
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i64`.
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i128`.
    fn deserialize_i128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u8`.
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u16`.
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u32`.
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u64`.
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u128`.
    fn deserialize_u128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `f32`.
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `f64`.
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `char`.
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a string slice.
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an owned string.
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a byte slice.
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an owned byte buffer.
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `Option`.
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes `()`.
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a unit struct.
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a single-field tuple struct.
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a variable-length sequence.
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a fixed-length heterogeneous sequence.
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a tuple struct.
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a map.
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a struct.
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes an enum.
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a field or variant identifier.
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Skips over a value (self-describing formats only).
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    /// Whether this format is human readable. Defaults to `true`.
    fn is_human_readable(&self) -> bool {
        true
    }
}

macro_rules! visitor_default {
    ($($method:ident : $ty:ty,)*) => {
        $(
            /// Visits one value of the corresponding primitive type.
            fn $method<E: Error>(self, v: $ty) -> Result<Self::Value, E> {
                let _ = v;
                Err(Error::custom(format_args!(
                    concat!("unexpected ", stringify!($method), ", expected {}"),
                    Expecting(&self)
                )))
            }
        )*
    };
}

/// Receives the values a [`Deserializer`] produces.
pub trait Visitor<'de>: Sized {
    /// The value built by this visitor.
    type Value;

    /// Describes what this visitor expects, for error messages.
    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

    visitor_default! {
        visit_bool: bool,
        visit_i8: i8,
        visit_i16: i16,
        visit_i32: i32,
        visit_i64: i64,
        visit_i128: i128,
        visit_u8: u8,
        visit_u16: u16,
        visit_u32: u32,
        visit_u64: u64,
        visit_u128: u128,
        visit_f32: f32,
        visit_f64: f64,
        visit_char: char,
    }

    /// Visits a borrowed string with the transient lifetime.
    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        let _ = v;
        Err(Error::custom(format_args!("unexpected string, expected {}", Expecting(&self))))
    }

    /// Visits a string borrowed from the input itself.
    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }

    /// Visits an owned string.
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }

    /// Visits transient bytes.
    fn visit_bytes<E: Error>(self, v: &[u8]) -> Result<Self::Value, E> {
        let _ = v;
        Err(Error::custom(format_args!("unexpected bytes, expected {}", Expecting(&self))))
    }

    /// Visits bytes borrowed from the input itself.
    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }

    /// Visits an owned byte buffer.
    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }

    /// Visits an absent optional.
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(Error::custom(format_args!("unexpected None, expected {}", Expecting(&self))))
    }

    /// Visits a present optional.
    fn visit_some<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(Error::custom(format_args!("unexpected Some, expected {}", Expecting(&self))))
    }

    /// Visits a unit value.
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(Error::custom(format_args!("unexpected unit, expected {}", Expecting(&self))))
    }

    /// Visits a newtype struct's contents.
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(Error::custom(format_args!("unexpected newtype struct, expected {}", Expecting(&self))))
    }

    /// Visits a sequence.
    fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
        let _ = seq;
        Err(Error::custom(format_args!("unexpected sequence, expected {}", Expecting(&self))))
    }

    /// Visits a map.
    fn visit_map<A: MapAccess<'de>>(self, map: A) -> Result<Self::Value, A::Error> {
        let _ = map;
        Err(Error::custom(format_args!("unexpected map, expected {}", Expecting(&self))))
    }

    /// Visits an enum.
    fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
        let _ = data;
        Err(Error::custom(format_args!("unexpected enum, expected {}", Expecting(&self))))
    }
}

/// Adapter that renders a visitor's `expecting` output with `Display`.
struct Expecting<'a, V>(&'a V);

impl<'de, V: Visitor<'de>> Display for Expecting<'_, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.expecting(f)
    }
}

/// Element-by-element access to a sequence.
pub trait SeqAccess<'de> {
    /// Error produced on failure.
    type Error: Error;

    /// Deserializes the next element through `seed`, or reports the end.
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;

    /// Deserializes the next element, or reports the end.
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }

    /// The number of remaining elements, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Entry-by-entry access to a map.
pub trait MapAccess<'de> {
    /// Error produced on failure.
    type Error: Error;

    /// Deserializes the next key through `seed`, or reports the end.
    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;

    /// Deserializes the value paired with the most recent key.
    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, Self::Error>;

    /// Deserializes the next key, or reports the end.
    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }

    /// Deserializes the value paired with the most recent key.
    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }

    /// Deserializes the next entry, or reports the end.
    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
        &mut self,
    ) -> Result<Option<(K, V)>, Self::Error> {
        match self.next_key()? {
            Some(key) => Ok(Some((key, self.next_value()?))),
            None => Ok(None),
        }
    }

    /// The number of remaining entries, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the variant tag of an enum.
pub trait EnumAccess<'de>: Sized {
    /// Error produced on failure.
    type Error: Error;
    /// Accessor for the variant's contents.
    type Variant: VariantAccess<'de, Error = Self::Error>;

    /// Deserializes the variant tag through `seed`.
    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;

    /// Deserializes the variant tag.
    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Access to the contents of one enum variant.
pub trait VariantAccess<'de>: Sized {
    /// Error produced on failure.
    type Error: Error;

    /// Finishes a dataless variant.
    fn unit_variant(self) -> Result<(), Self::Error>;

    /// Deserializes a single-field variant through `seed`.
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;

    /// Deserializes a single-field variant.
    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }

    /// Deserializes a tuple variant.
    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;

    /// Deserializes a struct variant.
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

/// Conversion of a primitive into a little deserializer of itself (used
/// for enum variant tags).
pub trait IntoDeserializer<'de, E: Error = value::Error> {
    /// The deserializer produced.
    type Deserializer: Deserializer<'de, Error = E>;
    /// Converts `self` into a deserializer.
    fn into_deserializer(self) -> Self::Deserializer;
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types.
// ---------------------------------------------------------------------------

macro_rules! primitive_deserialize {
    ($($ty:ty => $method:ident, $visit:ident, $expect:literal,)*) => {
        $(
            impl<'de> Deserialize<'de> for $ty {
                fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                    struct PrimitiveVisitor;
                    impl<'de> Visitor<'de> for PrimitiveVisitor {
                        type Value = $ty;
                        fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                            f.write_str($expect)
                        }
                        fn $visit<E: Error>(self, v: $ty) -> Result<$ty, E> {
                            Ok(v)
                        }
                    }
                    deserializer.$method(PrimitiveVisitor)
                }
            }
        )*
    };
}

primitive_deserialize! {
    bool => deserialize_bool, visit_bool, "a bool",
    i8 => deserialize_i8, visit_i8, "an i8",
    i16 => deserialize_i16, visit_i16, "an i16",
    i32 => deserialize_i32, visit_i32, "an i32",
    i64 => deserialize_i64, visit_i64, "an i64",
    i128 => deserialize_i128, visit_i128, "an i128",
    u8 => deserialize_u8, visit_u8, "a u8",
    u16 => deserialize_u16, visit_u16, "a u16",
    u32 => deserialize_u32, visit_u32, "a u32",
    u64 => deserialize_u64, visit_u64, "a u64",
    u128 => deserialize_u128, visit_u128, "a u128",
    f32 => deserialize_f32, visit_f32, "an f32",
    f64 => deserialize_f64, visit_f64, "an f64",
    char => deserialize_char, visit_char, "a char",
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UsizeVisitor;
        impl<'de> Visitor<'de> for UsizeVisitor {
            type Value = usize;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a usize")
            }
            fn visit_u64<E: Error>(self, v: u64) -> Result<usize, E> {
                usize::try_from(v).map_err(|_| Error::custom("usize out of range"))
            }
        }
        deserializer.deserialize_u64(UsizeVisitor)
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct IsizeVisitor;
        impl<'de> Visitor<'de> for IsizeVisitor {
            type Value = isize;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an isize")
            }
            fn visit_i64<E: Error>(self, v: i64) -> Result<isize, E> {
                isize::try_from(v).map_err(|_| Error::custom("isize out of range"))
            }
        }
        deserializer.deserialize_i64(IsizeVisitor)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct StringVisitor;
        impl<'de> Visitor<'de> for StringVisitor {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(StringVisitor)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UnitVisitor;
        impl<'de> Visitor<'de> for UnitVisitor {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a unit")
            }
            fn visit_unit<E: Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(UnitVisitor)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct OptionVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for OptionVisitor<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an option")
            }
            fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Self::Value, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
        }
        deserializer.deserialize_option(OptionVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct VecVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for VecVisitor<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(VecVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct ArrayVisitor<T, const N: usize>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>, const N: usize> Visitor<'de> for ArrayVisitor<T, N> {
            type Value = [T; N];
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "an array of length {N}")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = Vec::with_capacity(N);
                for i in 0..N {
                    match seq.next_element()? {
                        Some(item) => out.push(item),
                        None => return Err(Error::invalid_length(i, &N)),
                    }
                }
                out.try_into().map_err(|_| Error::custom("array length mismatch"))
            }
        }
        deserializer.deserialize_tuple(N, ArrayVisitor(PhantomData))
    }
}

impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct BTreeMapVisitor<K, V>(PhantomData<(K, V)>);
        impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Visitor<'de> for BTreeMapVisitor<K, V> {
            type Value = std::collections::BTreeMap<K, V>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::BTreeMap::new();
                while let Some((k, v)) = map.next_entry()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(BTreeMapVisitor(PhantomData))
    }
}

impl<'de, K, V, H> Deserialize<'de> for std::collections::HashMap<K, V, H>
where
    K: Deserialize<'de> + std::hash::Hash + Eq,
    V: Deserialize<'de>,
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct HashMapVisitor<K, V, H>(PhantomData<(K, V, H)>);
        impl<'de, K, V, H> Visitor<'de> for HashMapVisitor<K, V, H>
        where
            K: Deserialize<'de> + std::hash::Hash + Eq,
            V: Deserialize<'de>,
            H: std::hash::BuildHasher + Default,
        {
            type Value = std::collections::HashMap<K, V, H>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::HashMap::with_capacity_and_hasher(0, H::default());
                while let Some((k, v)) = map.next_entry()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(HashMapVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(Vec::<T>::deserialize(deserializer)?.into_iter().collect())
    }
}

macro_rules! tuple_deserialize {
    ($(($len:expr => $($name:ident),+),)*) => {
        $(
            impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
                fn deserialize<__D: Deserializer<'de>>(deserializer: __D) -> Result<Self, __D::Error> {
                    struct TupleVisitor<$($name),+>(PhantomData<($($name,)+)>);
                    impl<'de, $($name: Deserialize<'de>),+> Visitor<'de>
                        for TupleVisitor<$($name),+>
                    {
                        type Value = ($($name,)+);
                        fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                            write!(f, "a tuple of length {}", $len)
                        }
                        #[allow(non_snake_case)]
                        fn visit_seq<Acc: SeqAccess<'de>>(
                            self,
                            mut seq: Acc,
                        ) -> Result<Self::Value, Acc::Error> {
                            let mut __idx = 0usize;
                            $(
                                let $name = match seq.next_element()? {
                                    Some(v) => v,
                                    None => return Err(Error::invalid_length(__idx, &$len)),
                                };
                                __idx += 1;
                            )+
                            let _ = __idx;
                            Ok(($($name,)+))
                        }
                    }
                    deserializer.deserialize_tuple($len, TupleVisitor(PhantomData))
                }
            }
        )*
    };
}

tuple_deserialize! {
    (1 => A),
    (2 => A, B),
    (3 => A, B, C),
    (4 => A, B, C, D),
    (5 => A, B, C, D, E),
    (6 => A, B, C, D, E, F),
    (7 => A, B, C, D, E, F, G),
    (8 => A, B, C, D, E, F, G, H),
}
