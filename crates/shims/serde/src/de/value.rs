//! Tiny self-deserializers for primitive values (used for enum variant
//! tags) and the default error type that goes with them.

use super::{Deserializer, Error as DeError, IntoDeserializer, Visitor};
use std::fmt;
use std::marker::PhantomData;

/// Default error type for the value deserializers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl DeError for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// A deserializer holding one `u32`, delivered through `visit_u32`.
#[derive(Debug, Clone, Copy)]
pub struct U32Deserializer<E> {
    value: u32,
    error: PhantomData<E>,
}

impl<'de, E: DeError> IntoDeserializer<'de, E> for u32 {
    type Deserializer = U32Deserializer<E>;
    fn into_deserializer(self) -> U32Deserializer<E> {
        U32Deserializer { value: self, error: PhantomData }
    }
}

macro_rules! forward_to_visit_u32 {
    ($($method:ident)*) => {
        $(
            fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
                visitor.visit_u32(self.value)
            }
        )*
    };
}

impl<'de, E: DeError> Deserializer<'de> for U32Deserializer<E> {
    type Error = E;

    forward_to_visit_u32! {
        deserialize_any deserialize_bool
        deserialize_i8 deserialize_i16 deserialize_i32 deserialize_i64 deserialize_i128
        deserialize_u8 deserialize_u16 deserialize_u32 deserialize_u64 deserialize_u128
        deserialize_f32 deserialize_f64 deserialize_char
        deserialize_str deserialize_string deserialize_bytes deserialize_byte_buf
        deserialize_option deserialize_unit deserialize_seq deserialize_map
        deserialize_identifier deserialize_ignored_any
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        visitor.visit_u32(self.value)
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        visitor.visit_u32(self.value)
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        visitor.visit_u32(self.value)
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        visitor.visit_u32(self.value)
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        visitor.visit_u32(self.value)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        visitor.visit_u32(self.value)
    }
}
