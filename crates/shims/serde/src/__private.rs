//! Helpers the derive macros expand to. Not public API.

use crate::de::{Deserialize, Error, SeqAccess};

/// Pulls the next element out of a sequence, converting "too short" into
/// an error naming the field index.
pub fn next_element<'de, A, T>(seq: &mut A, index: usize) -> Result<T, A::Error>
where
    A: SeqAccess<'de>,
    T: Deserialize<'de>,
{
    match seq.next_element()? {
        Some(value) => Ok(value),
        None => Err(Error::invalid_length(index, &"more fields")),
    }
}
