//! In-tree, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this shim keeps
//! the `criterion_group!`/`criterion_main!` structure and the
//! `Criterion`/`BenchmarkGroup`/`Bencher` types, but measures with a
//! simple calibrated wall-clock loop instead of criterion's statistical
//! machinery. Output is one line per benchmark:
//!
//! ```text
//! group/name ... 1234 ns/iter (n = 100)
//! ```

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Accept and honor a substring filter, mirroring `cargo bench -- <filter>`.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench" && a != "--test");
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            measurement_time: Duration::from_millis(200),
            sample_size: 20,
        }
    }
}

/// A named identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A group of related benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the warm-up time (accepted for API compatibility; warm-up is
    /// a single untimed iteration in this shim).
    pub fn warm_up_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Sets the measurement time budget per benchmark.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        // Cap the budget so `cargo bench` over the full suite stays quick.
        self.measurement_time = duration.min(Duration::from_millis(500));
        self
    }

    /// Sets the target number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the throughput annotation (accepted and ignored).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut bencher);
        bencher.report(&full);
        self
    }

    /// Runs one benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Throughput annotation (accepted and ignored by this shim).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Times a closure over many iterations.
#[derive(Debug)]
pub struct Bencher {
    measurement_time: Duration,
    sample_size: usize,
    // Filled in by `iter`.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Runs `f` repeatedly, recording total time and iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up iteration.
        black_box(f());
        let start = Instant::now();
        let mut iters = 0u64;
        let deadline = start + self.measurement_time;
        loop {
            black_box(f());
            iters += 1;
            if iters >= self.sample_size as u64 && Instant::now() >= deadline {
                break;
            }
            if iters >= 1_000_000 {
                break;
            }
        }
        self.result = Some((start.elapsed(), iters));
    }

    fn report(&self, name: &str) {
        match self.result {
            Some((elapsed, iters)) if iters > 0 => {
                let per_iter = elapsed.as_nanos() / iters as u128;
                println!("{name} ... {per_iter} ns/iter (n = {iters})");
            }
            _ => println!("{name} ... no measurement"),
        }
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
