//! The control plane: epoch-bumping config agreement and chunked shard
//! handoff.
//!
//! * [`InstallConfig`] wraps `chorus_patterns::ProposeAck` — the repo's
//!   standing propose/validate/ack-quorum/decide pattern — over the
//!   config-change census (old members ∪ joiner), committing a new
//!   [`ClusterConfig`] epoch everywhere a quorum acknowledges. Each
//!   member validates against *its own* installed epoch and, on commit,
//!   installs the config (lifting freeze windows and garbage-collecting
//!   shards it no longer replicates).
//! * [`ShardPull`] is the two-party transfer choreography: a donor
//!   streams one hash range's entries to a recipient in bounded chunks
//!   while writes keep flowing (dirty-key tracking catches them); the
//!   [`PullMode::FreezeDelta`] variant freezes the range and ships only
//!   the final delta — the freeze window of the migration protocol.

use crate::config::{ClusterConfig, ShardId};
use crate::node::{NodeCtx, Versioned};
use chorus_core::{
    ChoreoOp, Choreography, ChoreographyLocation, Faceted, HCons, HNil, Here, Located, LocationSet,
    LocationSetFoldable, Member, Subset, There,
};
use chorus_patterns::{Misbehavior, ProposeAck};
use serde::{Deserialize, Serialize};
use std::marker::PhantomData;

/// Agrees on and installs a new config epoch across `Members`.
///
/// Unlike a pure-data choreography this one carries `ctx`, the *local*
/// node's state handle: under endpoint projection every participant
/// constructs its own instance around its own [`NodeCtx`], so the
/// `ProposeAck` validation hook and the commit-time install both act on
/// per-endpoint state. (It is therefore meaningful only under
/// projection, not under the centralized `Runner`.)
pub struct InstallConfig<'a, Proposer, Members: LocationSet, ProposerIdx, MRefl, MFold> {
    /// The proposed config. The driver hands it to every endpoint (it
    /// computed the successor), but only the proposer's copy enters the
    /// round — everyone else validates what arrives over the wire.
    pub proposed: ClusterConfig,
    /// Acknowledgements required to commit.
    pub quorum: usize,
    /// This endpoint's node state.
    pub ctx: &'a NodeCtx,
    /// Inferred proof indices; pass `PhantomData`.
    pub phantom: PhantomData<(Proposer, Members, ProposerIdx, MRefl, MFold)>,
}

impl<Proposer, Members, ProposerIdx, MRefl, MFold>
    Choreography<Faceted<Result<ClusterConfig, Misbehavior>, Members>>
    for InstallConfig<'_, Proposer, Members, ProposerIdx, MRefl, MFold>
where
    Proposer: ChoreographyLocation + Member<Members, ProposerIdx>,
    Members: LocationSet + Subset<Members, MRefl> + LocationSetFoldable<Members, Members, MFold>,
{
    type L = Members;

    fn run(
        self,
        op: &impl ChoreoOp<Self::L>,
    ) -> Faceted<Result<ClusterConfig, Misbehavior>, Members> {
        let ctx = self.ctx;
        let epoch = self.proposed.epoch;
        let validate = |config: &ClusterConfig| ctx.validate_config(config);
        let proposal: Located<ClusterConfig, Proposer> =
            op.locally::<_, Proposer, ProposerIdx>(Proposer::new(), |_| self.proposed.clone());
        let outcome: Faceted<Result<ClusterConfig, Misbehavior>, Members> =
            ProposeAck::<'_, ClusterConfig, Proposer, Members, _, ProposerIdx, MRefl, MFold> {
                proposal: &proposal,
                epoch,
                quorum: self.quorum,
                validate: &validate,
                phantom: PhantomData,
            }
            .run(op);
        // Commit is knowledge every acker now has: each member installs
        // its own committed copy (no-op on the aborted/faulted facets).
        op.map_facets(Members::new(), &outcome, |result| {
            if let Ok(config) = result {
                ctx.install_config(config);
            }
            result.clone()
        })
    }
}

/// How a [`ShardPull`] sources its entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PullMode {
    /// Full-range snapshot; writes keep flowing. `track` arms dirty-key
    /// tracking at the donor so a later [`PullMode::FreezeDelta`] ships
    /// exactly what changed since this snapshot.
    Snapshot {
        /// Whether to begin dirty-key tracking at extraction time.
        track: bool,
    },
    /// Freeze the range against writes and ship the tracked delta —
    /// the final, bounded step of a live handoff.
    FreezeDelta,
}

/// What a completed pull transferred.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PullReport {
    /// Entries shipped.
    pub entries: u64,
    /// Chunks used.
    pub chunks: u64,
}

/// Two-party chunked state transfer of one hash range, donor to
/// recipient.
///
/// Like [`InstallConfig`], `ctx` is the local endpoint's state: the
/// donor's instance extracts/freezes, the recipient's merges. The
/// stream is count-prefixed (knowledge of choice for the loop bound)
/// and chunks merge by max version, so replays are harmless.
pub struct ShardPull<'a, Donor, Recipient> {
    /// The target shard id (for freeze/tracking bookkeeping).
    pub shard: ShardId,
    /// The half-open hash range to ship.
    pub range: (u64, u64),
    /// Snapshot or final delta.
    pub mode: PullMode,
    /// Max entries per chunk (bounded memory in flight).
    pub chunk: usize,
    /// This endpoint's node state.
    pub ctx: &'a NodeCtx,
    /// The two roles.
    pub phantom: PhantomData<(Donor, Recipient)>,
}

type Pair<Donor, Recipient> = HCons<Donor, HCons<Recipient, HNil>>;

impl<Donor, Recipient> Choreography<PullReport> for ShardPull<'_, Donor, Recipient>
where
    Donor: ChoreographyLocation,
    Recipient: ChoreographyLocation,
{
    type L = Pair<Donor, Recipient>;

    fn run(self, op: &impl ChoreoOp<Self::L>) -> PullReport {
        let ctx = self.ctx;
        let (start, end) = self.range;
        let shard = self.shard;
        let mode = self.mode;
        let entries: Located<Vec<(String, Versioned)>, Donor> =
            op.locally::<_, Donor, Here>(Donor::new(), |_| match mode {
                PullMode::Snapshot { track } => {
                    if track {
                        ctx.begin_handoff(shard, start, end);
                    }
                    ctx.extract_range(start, end)
                }
                PullMode::FreezeDelta => {
                    ctx.freeze(shard, start, end);
                    ctx.take_dirty(shard)
                }
            });
        // Count-prefix the stream so both sides agree on the loop bound
        // (knowledge of choice via broadcast within the pair).
        let chunk_size = self.chunk.max(1);
        let total: u64 = op.broadcast::<Donor, u64, Here>(
            Donor::new(),
            op.locally::<_, Donor, Here>(Donor::new(), |un| {
                un.unwrap_ref::<Vec<(String, Versioned)>, chorus_core::LocationSet!(Donor), Here>(
                    &entries,
                )
                .len() as u64
            }),
        );
        let chunks = total.div_ceil(chunk_size as u64);
        let mut shipped = 0u64;
        for i in 0..chunks {
            let part: Located<Vec<(String, Versioned)>, Donor> =
                op.locally::<_, Donor, Here>(Donor::new(), |un| {
                    let all = un
                        .unwrap_ref::<Vec<(String, Versioned)>, chorus_core::LocationSet!(Donor), Here>(
                            &entries,
                        );
                    let lo = (i as usize) * chunk_size;
                    let hi = all.len().min(lo + chunk_size);
                    all[lo..hi].to_vec()
                });
            let delivered = op.comm::<Donor, Recipient, _, Here, There<Here>>(
                Donor::new(),
                Recipient::new(),
                &part,
            );
            let merged: Located<u64, Recipient> =
                op.locally::<_, Recipient, There<Here>>(Recipient::new(), |un| {
                    let part = un
                        .unwrap_ref::<Vec<(String, Versioned)>, chorus_core::LocationSet!(Recipient), Here>(
                            &delivered,
                        );
                    ctx.merge_entries(part);
                    part.len() as u64
                });
            // The recipient acknowledges each chunk; the donor learns
            // the stream is flowing (and the ack count closes the loop).
            shipped += op.broadcast::<Recipient, u64, There<Here>>(Recipient::new(), merged);
        }
        PullReport { entries: shipped, chunks }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{KvsOp, StampedRequest};
    use chorus_core::Endpoint;
    use chorus_transport::{FaultPlan, SimNet, SimTransport};

    chorus_core::locations! { D, R }
    type Duo = chorus_core::LocationSet!(D, R);

    fn put(ctx: &NodeCtx, epoch: u64, version: u64, key: &str) {
        ctx.apply(&StampedRequest {
            epoch,
            version,
            op: KvsOp::Put { key: key.into(), value: format!("v{version}") },
        });
    }

    #[test]
    fn snapshot_then_delta_moves_everything() {
        let donor_ctx = NodeCtx::new("D");
        let recipient_ctx = NodeCtx::new("R");
        let config = ClusterConfig::bootstrap(&["D"], 1);
        donor_ctx.install_config(&config);
        for i in 0..10 {
            put(&donor_ctx, 1, i + 1, &format!("k{i}"));
        }
        let shard = config.shards[0].id;
        let (start, end) = config.shard_range(shard).unwrap();

        let run_pull = |mode: PullMode| {
            let net = SimNet::<Duo>::new(FaultPlan::ideal());
            let donor = {
                let net = net.clone();
                let ctx = donor_ctx.clone();
                std::thread::spawn(move || {
                    let endpoint = Endpoint::new(SimTransport::new(D, net));
                    let session = endpoint.session();
                    session.epp_and_run(ShardPull::<'_, D, R> {
                        shard,
                        range: (start, end),
                        mode,
                        chunk: 3,
                        ctx: &ctx,
                        phantom: PhantomData,
                    })
                })
            };
            let recipient = {
                let ctx = recipient_ctx.clone();
                std::thread::spawn(move || {
                    let endpoint = Endpoint::new(SimTransport::new(R, net));
                    let session = endpoint.session();
                    session.epp_and_run(ShardPull::<'_, D, R> {
                        shard,
                        range: (start, end),
                        mode,
                        chunk: 3,
                        ctx: &ctx,
                        phantom: PhantomData,
                    })
                })
            };
            let report = donor.join().unwrap();
            assert_eq!(report, recipient.join().unwrap());
            report
        };

        let snapshot = run_pull(PullMode::Snapshot { track: true });
        assert_eq!(snapshot.entries, 10);
        assert_eq!(snapshot.chunks, 4);
        assert_eq!(recipient_ctx.entry_count(), 10);

        // Writes landed after the snapshot: the delta ships them.
        put(&donor_ctx, 1, 100, "k3");
        put(&donor_ctx, 1, 101, "fresh");
        let delta = run_pull(PullMode::FreezeDelta);
        assert_eq!(delta.entries, 2);
        assert_eq!(recipient_ctx.entry_count(), 11);
        use chorus_protocols::store::KeyValueStore as _;
        assert_eq!(recipient_ctx.get("k3").unwrap().version, 100);
    }
}
