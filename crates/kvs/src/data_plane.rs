//! The census-polymorphic data plane: one `Get`/`Put` round against the
//! current cluster, written once over an abstract member set.
//!
//! [`ClusterOp`] is generic over `Members` — the node census of the
//! *currently installed* config — exactly the paper's census
//! polymorphism: the same choreography text serves a 2-node cluster
//! during a leave, a 4-node cluster after a join, and anything between,
//! with the concrete set bound at the call site (§3.4). The client
//! pushes an epoch-stamped request to every member ([`try_multicast`],
//! so a chaos-eaten frame degrades to a typed miss instead of a hang),
//! each member answers from its own replica state machine, and the
//! replies fan back in with per-member communication failures
//! attributed — mirroring `chorus_patterns::ProposeAck`'s ack round.
//! The client then resolves quorum: stale-epoch fencing first, then
//! write/read quorums over the shard's replica set.
//!
//! [`try_multicast`]: chorus_core::ChoreoOp::try_multicast

use crate::config::{fnv1a, ClusterConfig};
use crate::node::{KvsOp, NodeCtx, NodeReply, StampedRequest, Versioned};
use chorus_core::{
    ChoreoOp, Choreography, ChoreographyLocation, CommFailure, Faceted, HCons, Here, Located,
    LocationSet, LocationSetFoldable, Member, MultiplyLocated, Quire, Subset,
};
use chorus_protocols::roles::Client;
use serde::{Deserialize, Serialize};
use std::marker::PhantomData;

/// The full census of one data-plane round: the client plus the current
/// members.
pub type KvsCensus<Members> = HCons<Client, Members>;

/// Why a client operation failed, as a typed error — never a hang,
/// never a silently wrong read.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum KvsError {
    /// A replica holds a newer config epoch than the request's stamp;
    /// the client must refresh its config and retry.
    StaleEpoch {
        /// The newest epoch any replica reported.
        observed: u64,
    },
    /// The key's shard is inside a migration freeze window; retry after
    /// the handoff commits.
    Frozen,
    /// Not enough replicas answered to reach quorum.
    Unavailable {
        /// Acknowledgements received from the shard's replica set.
        acks: usize,
        /// Quorum required.
        need: usize,
    },
}

impl std::fmt::Display for KvsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvsError::StaleEpoch { observed } => write!(f, "stale epoch (cluster at {observed})"),
            KvsError::Frozen => write!(f, "shard frozen for final-delta handoff"),
            KvsError::Unavailable { acks, need } => {
                write!(f, "quorum unavailable ({acks}/{need} replicas)")
            }
        }
    }
}

impl std::error::Error for KvsError {}

/// A successful client operation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpOutcome {
    /// The put reached a write quorum at this version.
    Put {
        /// The committed write version.
        version: u64,
    },
    /// The get reached a read quorum; `found` is the max-version value.
    Get {
        /// The freshest value any quorum replica held, if any.
        found: Option<Versioned>,
    },
}

/// One data-plane round: client request in, quorum-resolved result out.
///
/// `Members` is the node census of the installed config; the client is
/// prepended by the choreography itself. Proof indices `MSubset`/`MFold`
/// are inferred — pass `PhantomData`.
pub struct ClusterOp<Members: LocationSet, MSubset, MFold> {
    /// The client's stamped request.
    pub request: Located<StampedRequest, Client>,
    /// Each member's replica state handle (own facet only, under
    /// projection).
    pub nodes: Faceted<NodeCtx, Members>,
    /// The client's view of the config, used to resolve quorum.
    pub config: Located<ClusterConfig, Client>,
    /// Inferred proof indices; pass `PhantomData`.
    pub phantom: PhantomData<(MSubset, MFold)>,
}

impl<Members, MSubset, MFold> Choreography<Located<Result<OpOutcome, KvsError>, Client>>
    for ClusterOp<Members, MSubset, MFold>
where
    Members: LocationSet
        + Subset<KvsCensus<Members>, MSubset>
        + LocationSetFoldable<KvsCensus<Members>, Members, MFold>,
{
    type L = KvsCensus<Members>;

    fn run(self, op: &impl ChoreoOp<Self::L>) -> Located<Result<OpOutcome, KvsError>, Client> {
        // 1. The client pushes the stamped request to every member;
        // a member the chaos cuts off sees a typed failure, not a hang.
        let pushed = op.try_multicast::<Client, StampedRequest, Members, Here, MSubset>(
            Client,
            Members::new(),
            &self.request,
        );

        // 2. Every member answers from its own replica state machine.
        let replies: Faceted<NodeReply, Members> = op.fanout(
            Members::new(),
            ApplyBody::<'_, Members> { pushed: &pushed, nodes: &self.nodes },
        );

        // 3. Replies fan in to the client; an unreachable or garbled
        // member is recorded as its own attributed failure.
        let gathered: MultiplyLocated<
            Quire<Result<NodeReply, CommFailure>, Members>,
            chorus_core::LocationSet!(Client),
        > = op.fanin(Members::new(), ReplySend::<'_, Members> { replies: &replies });

        // 4. The client resolves quorum under its config view.
        op.locally::<_, Client, Here>(Client, |un| {
            let quire = un
                .unwrap_ref::<Quire<Result<NodeReply, CommFailure>, Members>, chorus_core::LocationSet!(Client), Here>(
                    &gathered,
                );
            let config = un.unwrap_ref::<ClusterConfig, chorus_core::LocationSet!(Client), Here>(&self.config);
            let request = un.unwrap_ref::<StampedRequest, chorus_core::LocationSet!(Client), Here>(&self.request);
            resolve(config, request, quire.iter())
        })
    }
}

/// Per-member application of the pushed request.
struct ApplyBody<'a, Members: LocationSet> {
    pushed: &'a Result<MultiplyLocated<StampedRequest, Members>, CommFailure>,
    nodes: &'a Faceted<NodeCtx, Members>,
}

impl<Members: LocationSet> chorus_core::FanOutChoreography<NodeReply> for ApplyBody<'_, Members> {
    type L = KvsCensus<Members>;
    type QS = Members;

    fn run<Q: ChoreographyLocation, QSSubsetL, QMemberL, QMemberQS>(
        &self,
        op: &impl ChoreoOp<Self::L>,
    ) -> Located<NodeReply, Q>
    where
        Self::QS: Subset<Self::L, QSSubsetL>,
        Q: Member<Self::L, QMemberL>,
        Q: Member<Self::QS, QMemberQS>,
    {
        op.locally::<_, Q, QMemberL>(Q::new(), |un| {
            let node = un.unwrap_faceted_ref::<NodeCtx, Members, QMemberQS>(self.nodes);
            match self.pushed {
                Err(_) => NodeReply::NoRequest,
                Ok(delivered) => {
                    node.apply(un.unwrap_ref::<StampedRequest, Members, QMemberQS>(delivered))
                }
            }
        })
    }
}

/// Fan-in of member replies to the client, failures attributed per
/// member (the `ProposeAck` ack-round shape).
struct ReplySend<'a, Members: LocationSet> {
    replies: &'a Faceted<NodeReply, Members>,
}

impl<Members: LocationSet> chorus_core::FanInChoreography<Result<NodeReply, CommFailure>>
    for ReplySend<'_, Members>
{
    type L = KvsCensus<Members>;
    type QS = Members;
    type RS = chorus_core::LocationSet!(Client);

    fn run<Qi: ChoreographyLocation, QSSubsetL, RSSubsetL, QiMemberL, QiMemberQS>(
        &self,
        op: &impl ChoreoOp<Self::L>,
    ) -> MultiplyLocated<Result<NodeReply, CommFailure>, Self::RS>
    where
        Self::QS: Subset<Self::L, QSSubsetL>,
        Self::RS: Subset<Self::L, RSSubsetL>,
        Qi: Member<Self::L, QiMemberL>,
        Qi: Member<Self::QS, QiMemberQS>,
    {
        let reply: Located<NodeReply, Qi> = op.locally::<_, Qi, QiMemberL>(Qi::new(), |un| {
            un.unwrap_faceted_ref::<NodeReply, Members, QiMemberQS>(self.replies).clone()
        });
        match op.try_multicast::<Qi, NodeReply, Self::RS, QiMemberL, RSSubsetL>(
            Qi::new(),
            <Self::RS>::new(),
            &reply,
        ) {
            Ok(delivered) => op.locally::<_, Client, Here>(Client, |un| {
                Ok(un.unwrap_ref::<NodeReply, Self::RS, Here>(&delivered).clone())
            }),
            Err(failure) => op.locally::<_, Client, Here>(Client, move |_| Err(failure.clone())),
        }
    }
}

/// Quorum resolution at the client: epoch fencing first, then counting
/// over the shard's replica set under the client's config view.
pub fn resolve<'a>(
    config: &ClusterConfig,
    request: &StampedRequest,
    replies: impl Iterator<Item = (&'a str, &'a Result<NodeReply, CommFailure>)>,
) -> Result<OpOutcome, KvsError> {
    let shard = config.shard_at(fnv1a(request.op.key().as_bytes()));
    let mut newest_epoch = 0;
    let mut acks = 0usize;
    let mut frozen = false;
    let mut freshest: Option<Versioned> = None;
    let mut value_acks = 0usize;
    for (name, reply) in replies {
        let Ok(reply) = reply else { continue };
        if let NodeReply::StaleEpoch { current } = reply {
            newest_epoch = newest_epoch.max(*current);
            continue;
        }
        if !shard.replicas.iter().any(|r| r == name) {
            continue;
        }
        match reply {
            NodeReply::Applied => acks += 1,
            NodeReply::Value { found } => {
                value_acks += 1;
                if let Some(v) = found {
                    if freshest.as_ref().map(|f| f.version < v.version).unwrap_or(true) {
                        freshest = Some(v.clone());
                    }
                }
            }
            NodeReply::Frozen => frozen = true,
            _ => {}
        }
    }
    if newest_epoch > request.epoch {
        return Err(KvsError::StaleEpoch { observed: newest_epoch });
    }
    match &request.op {
        KvsOp::Put { .. } => {
            if acks >= config.write_quorum() {
                Ok(OpOutcome::Put { version: request.version })
            } else if frozen {
                Err(KvsError::Frozen)
            } else {
                Err(KvsError::Unavailable { acks, need: config.write_quorum() })
            }
        }
        KvsOp::Get { .. } => {
            if value_acks >= config.read_quorum() {
                Ok(OpOutcome::Get { found: freshest })
            } else {
                Err(KvsError::Unavailable { acks: value_acks, need: config.read_quorum() })
            }
        }
    }
}
