//! `chorus_kvs`: a sharded, replicated key-value store subsystem with a
//! *dynamic census* — members join and leave, shards split and migrate
//! live, and crashed replicas recover — built from the repo's
//! census-polymorphic choreography core.
//!
//! The subsystem has four layers:
//!
//! * [`config`] — the cluster model: a versioned [`ClusterConfig`]
//!   (epoch, range-sharded key space, rendezvous-hashed replica sets)
//!   and the pure successor functions (`with_join`, `with_leave`,
//!   `with_split`, `with_migrate`).
//! * [`data_plane`] — [`ClusterOp`], the census-polymorphic `Get`/`Put`
//!   round: epoch-stamped requests, quorum replication, stale-epoch
//!   fencing, every failure typed ([`KvsError`]) — never a hang, never
//!   a silently wrong read.
//! * [`reconfig`] — the control plane: [`InstallConfig`] (config
//!   agreement over `chorus_patterns::ProposeAck`) and [`ShardPull`]
//!   (chunked live handoff: tracked snapshot while writes flow, then a
//!   freeze window only for the final delta).
//! * [`cluster`] — the scenario harness: [`SimCluster`] drives a whole
//!   simulated cluster over one `SimTransport` net, bridging *runtime*
//!   census data to the *type-level* location sets via dispatch macros,
//!   with an in-driver per-key [`ConsistencyModel`].
//!
//! [`ClusterConfig`]: config::ClusterConfig
//! [`ClusterOp`]: data_plane::ClusterOp
//! [`KvsError`]: data_plane::KvsError
//! [`InstallConfig`]: reconfig::InstallConfig
//! [`ShardPull`]: reconfig::ShardPull
//! [`SimCluster`]: cluster::SimCluster
//! [`ConsistencyModel`]: model::ConsistencyModel

pub mod cluster;
pub mod config;
pub mod data_plane;
pub mod model;
pub mod node;
pub mod reconfig;

pub use cluster::{FreezeWindow, SimCluster, Transfer, Universe, N1, N2, N3, N4, NODE_NAMES};
pub use config::{fnv1a, ClusterConfig, Shard, ShardId};
pub use data_plane::{ClusterOp, KvsError, OpOutcome};
pub use model::ConsistencyModel;
pub use node::{KvsOp, NodeCtx, NodeReply, StampedRequest, Versioned};
pub use reconfig::{InstallConfig, PullMode, PullReport, ShardPull};
