//! Per-node replica state: a versioned shard store with epoch fencing,
//! write-freeze windows, and dirty-key tracking for live migration.
//!
//! A [`NodeCtx`] is the handle a node's threads share across sessions:
//! the scenario harness spawns one short-lived choreography session per
//! client operation, and the node's store, installed config, and
//! freeze/tracking state persist here in between. It implements the
//! shared [`KeyValueStore`] abstraction from `chorus_protocols` (the
//! satellite extraction), with [`Versioned`] values merged by version so
//! replication, migration, and recovery are all idempotent max-merges.

use crate::config::{fnv1a, ClusterConfig, ShardId};
use chorus_protocols::store::KeyValueStore;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A value plus its monotonically increasing version stamp; replicas
/// merge by keeping the higher version.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Versioned {
    /// Driver-assigned, globally monotonic write version.
    pub version: u64,
    /// The stored value.
    pub value: String,
}

/// A client operation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum KvsOp {
    /// Store `value` under `key` with the stamped version.
    Put {
        /// Target key.
        key: String,
        /// Value to store.
        value: String,
    },
    /// Look up `key`.
    Get {
        /// Target key.
        key: String,
    },
}

impl KvsOp {
    /// The key this operation targets.
    pub fn key(&self) -> &str {
        match self {
            KvsOp::Put { key, .. } | KvsOp::Get { key } => key,
        }
    }
}

/// An operation stamped with the client's config epoch and a unique
/// version — the unit the data plane routes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StampedRequest {
    /// The client's view of the config epoch; replicas fence on it.
    pub epoch: u64,
    /// Globally unique, monotonically increasing operation id; doubles
    /// as the write version for `Put`s.
    pub version: u64,
    /// The operation itself.
    pub op: KvsOp,
}

/// One replica's typed answer to a stamped request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeReply {
    /// A `Put` was applied at this replica.
    Applied,
    /// A `Get` hit this replica; `found` is its best version.
    Value {
        /// The replica's current version for the key, if any.
        found: Option<Versioned>,
    },
    /// The request's epoch disagrees with this replica's installed
    /// config — the client must refresh and retry.
    StaleEpoch {
        /// The replica's installed epoch.
        current: u64,
    },
    /// The key's shard is inside a migration freeze window; writes are
    /// briefly rejected (reads still serve).
    Frozen,
    /// This member does not replicate the key's shard.
    NotReplica,
    /// The node is crashed (fail-stop); it answers nothing useful.
    Down,
    /// The request never reached this member (chaos ate the frame).
    NoRequest,
}

/// Fail-stop mode of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeMode {
    /// Serving normally.
    Up,
    /// Crashed: replies [`NodeReply::Down`] until recovered.
    Down,
}

#[derive(Debug)]
struct Tracking {
    start: u64,
    end: u64,
    dirty: BTreeSet<String>,
}

#[derive(Debug)]
struct NodeInner {
    config: Option<ClusterConfig>,
    data: BTreeMap<String, Versioned>,
    /// Write-frozen hash ranges (final-delta windows of in-flight
    /// handoffs), keyed by the *target* shard id. Ranges, not ids,
    /// because a split's fresh shard id does not exist in this node's
    /// installed config yet — only the range identifies the writes to
    /// hold back.
    frozen: BTreeMap<ShardId, (u64, u64)>,
    /// Dirty-key tracking per in-flight handoff, keyed by target shard
    /// id with the hash range captured when tracking began.
    tracking: BTreeMap<ShardId, Tracking>,
    mode: NodeMode,
}

fn in_range(hash: u64, start: u64, end: u64) -> bool {
    (start..end).contains(&hash) || (end == u64::MAX && hash == u64::MAX)
}

/// A node's persistent state handle; clones share state.
#[derive(Debug, Clone)]
pub struct NodeCtx {
    name: &'static str,
    inner: Arc<Mutex<NodeInner>>,
}

impl NodeCtx {
    /// A fresh node with no installed config.
    pub fn new(name: &'static str) -> Self {
        Self {
            name,
            inner: Arc::new(Mutex::new(NodeInner {
                config: None,
                data: BTreeMap::new(),
                frozen: BTreeMap::new(),
                tracking: BTreeMap::new(),
                mode: NodeMode::Up,
            })),
        }
    }

    /// The node's role name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The installed config, if any.
    pub fn config(&self) -> Option<ClusterConfig> {
        self.inner.lock().config.clone()
    }

    /// The installed epoch (0 before any config).
    pub fn epoch(&self) -> u64 {
        self.inner.lock().config.as_ref().map(|c| c.epoch).unwrap_or(0)
    }

    /// Whether the node is serving.
    pub fn is_up(&self) -> bool {
        self.inner.lock().mode == NodeMode::Up
    }

    /// Fail-stop the node: it keeps answering sessions (the simulated
    /// process is still scheduled) but every answer is
    /// [`NodeReply::Down`] and no state changes.
    pub fn crash(&self) {
        self.inner.lock().mode = NodeMode::Down;
    }

    /// Crash *with state loss*: the store is wiped, modeling a replica
    /// whose disk is gone and must be rebuilt by recovery.
    pub fn crash_and_wipe(&self) {
        let mut inner = self.inner.lock();
        inner.mode = NodeMode::Down;
        inner.data.clear();
        inner.frozen.clear();
        inner.tracking.clear();
    }

    /// Brings a crashed node back up (after recovery repopulated it).
    pub fn restart(&self) {
        self.inner.lock().mode = NodeMode::Up;
    }

    /// Installs a committed config: bumps the fencing epoch, lifts every
    /// freeze window, drops handoff tracking, and garbage-collects keys
    /// this member no longer replicates.
    pub fn install_config(&self, config: &ClusterConfig) {
        let mut inner = self.inner.lock();
        if inner.mode == NodeMode::Down {
            return;
        }
        if let Some(current) = &inner.config {
            if current.epoch >= config.epoch {
                return;
            }
        }
        inner.frozen.clear();
        inner.tracking.clear();
        let name = self.name;
        inner.data.retain(|key, _| config.is_replica(name, fnv1a(key.as_bytes())));
        inner.config = Some(config.clone());
    }

    /// Validation hook for the config-change `ProposeAck` round: accept
    /// exactly the next epoch over a census that still contains a
    /// quorum-capable membership.
    pub fn validate_config(&self, proposed: &ClusterConfig) -> Result<(), String> {
        let inner = self.inner.lock();
        if inner.mode == NodeMode::Down {
            return Err("node is down".to_string());
        }
        let current = inner.config.as_ref().map(|c| c.epoch).unwrap_or(0);
        if proposed.epoch <= current {
            return Err(format!("stale epoch {} (installed {})", proposed.epoch, current));
        }
        if proposed.census.is_empty() {
            return Err("empty census".to_string());
        }
        Ok(())
    }

    /// Applies a stamped request, producing this replica's typed reply.
    /// This is the entire data-plane state machine: fail-stop mode,
    /// epoch fencing, replica-set membership, freeze windows, versioned
    /// merge, and dirty tracking — in that order.
    pub fn apply(&self, request: &StampedRequest) -> NodeReply {
        let mut inner = self.inner.lock();
        if inner.mode == NodeMode::Down {
            return NodeReply::Down;
        }
        let Some(config) = inner.config.clone() else {
            return NodeReply::StaleEpoch { current: 0 };
        };
        if config.epoch != request.epoch {
            return NodeReply::StaleEpoch { current: config.epoch };
        }
        let hash = fnv1a(request.op.key().as_bytes());
        let shard = config.shard_at(hash);
        if !shard.replicas.iter().any(|r| r == self.name) {
            return NodeReply::NotReplica;
        }
        match &request.op {
            KvsOp::Get { key } => NodeReply::Value { found: inner.data.get(key).cloned() },
            KvsOp::Put { key, value } => {
                if inner.frozen.values().any(|&(start, end)| in_range(hash, start, end)) {
                    return NodeReply::Frozen;
                }
                let versioned = Versioned { version: request.version, value: value.clone() };
                merge_entry(&mut inner.data, key, versioned);
                let key = key.clone();
                for tracking in inner.tracking.values_mut() {
                    if in_range(hash, tracking.start, tracking.end) {
                        tracking.dirty.insert(key.clone());
                    }
                }
                NodeReply::Applied
            }
        }
    }

    /// Starts dirty-key tracking for a handoff of the hash range
    /// `[start, end)` (shard `id`): writes landing in the range from now
    /// on are recorded so the final delta ships them.
    pub fn begin_handoff(&self, id: ShardId, start: u64, end: u64) {
        self.inner.lock().tracking.insert(id, Tracking { start, end, dirty: BTreeSet::new() });
    }

    /// Enters the freeze window for the hash range `[start, end)`
    /// (target shard `id`): writes landing in it are rejected with
    /// [`NodeReply::Frozen`] until a config installs or the handoff
    /// aborts.
    pub fn freeze(&self, id: ShardId, start: u64, end: u64) {
        self.inner.lock().frozen.insert(id, (start, end));
    }

    /// Aborts a handoff: lifts the freeze and drops tracking.
    pub fn abort_handoff(&self, id: ShardId) {
        let mut inner = self.inner.lock();
        inner.frozen.remove(&id);
        inner.tracking.remove(&id);
    }

    /// Drains the dirty set of a tracked handoff, returning the current
    /// versioned entries of every key written since tracking began.
    pub fn take_dirty(&self, id: ShardId) -> Vec<(String, Versioned)> {
        let mut inner = self.inner.lock();
        let Some(tracking) = inner.tracking.get_mut(&id) else {
            return Vec::new();
        };
        let keys: Vec<String> = std::mem::take(&mut tracking.dirty).into_iter().collect();
        keys.into_iter().filter_map(|k| inner.data.get(&k).cloned().map(|v| (k, v))).collect()
    }

    /// Snapshot of the entries whose key hash falls in `[start, end)`
    /// (`end == u64::MAX` is inclusive at the top), for chunked
    /// transfer.
    pub fn extract_range(&self, start: u64, end: u64) -> Vec<(String, Versioned)> {
        let inner = self.inner.lock();
        inner
            .data
            .iter()
            .filter(|(k, _)| in_range(fnv1a(k.as_bytes()), start, end))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Merges transferred entries by max version — idempotent, so
    /// re-sent chunks and overlapping recovery pulls are harmless.
    pub fn merge_entries(&self, entries: &[(String, Versioned)]) {
        let mut inner = self.inner.lock();
        for (key, versioned) in entries {
            merge_entry(&mut inner.data, key, versioned.clone());
        }
    }

    /// Number of stored entries (assertion helper).
    pub fn entry_count(&self) -> usize {
        self.inner.lock().data.len()
    }
}

fn merge_entry(data: &mut BTreeMap<String, Versioned>, key: &str, incoming: Versioned) {
    match data.get_mut(key) {
        Some(existing) if existing.version >= incoming.version => {}
        Some(existing) => *existing = incoming,
        None => {
            data.insert(key.to_string(), incoming);
        }
    }
}

impl KeyValueStore for NodeCtx {
    type Value = Versioned;

    fn put(&self, key: &str, value: Versioned) -> Option<Versioned> {
        let mut inner = self.inner.lock();
        let previous = inner.data.get(key).cloned();
        merge_entry(&mut inner.data, key, value);
        previous
    }

    fn get(&self, key: &str) -> Option<Versioned> {
        self.inner.lock().data.get(key).cloned()
    }

    fn len(&self) -> usize {
        self.entry_count()
    }

    fn snapshot(&self) -> BTreeMap<String, Versioned> {
        self.inner.lock().data.clone()
    }

    fn overwrite(&self, map: BTreeMap<String, Versioned>) {
        self.inner.lock().data = map;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(epoch: u64, version: u64, key: &str, value: &str) -> StampedRequest {
        StampedRequest { epoch, version, op: KvsOp::Put { key: key.into(), value: value.into() } }
    }

    #[test]
    fn epoch_fencing_rejects_mismatches() {
        let node = NodeCtx::new("N1");
        let config = ClusterConfig::bootstrap(&["N1", "N2"], 2);
        node.install_config(&config);
        assert_eq!(node.apply(&put(2, 1, "k", "v")), NodeReply::StaleEpoch { current: 1 });
        assert_eq!(node.apply(&put(1, 1, "k", "v")), NodeReply::Applied);
    }

    #[test]
    fn versioned_merge_keeps_the_winner() {
        let node = NodeCtx::new("N1");
        let config = ClusterConfig::bootstrap(&["N1"], 1);
        node.install_config(&config);
        node.apply(&put(1, 5, "k", "new"));
        node.apply(&put(1, 3, "k", "old"));
        assert_eq!(
            KeyValueStore::get(&node, "k"),
            Some(Versioned { version: 5, value: "new".into() })
        );
    }

    #[test]
    fn freeze_rejects_writes_but_serves_reads() {
        let node = NodeCtx::new("N1");
        let config = ClusterConfig::bootstrap(&["N1"], 1);
        node.install_config(&config);
        node.apply(&put(1, 1, "k", "v"));
        let shard = config.shard_of("k").id;
        let (start, end) = config.shard_range(shard).unwrap();
        node.freeze(shard, start, end);
        assert_eq!(node.apply(&put(1, 2, "k", "w")), NodeReply::Frozen);
        let get = StampedRequest { epoch: 1, version: 3, op: KvsOp::Get { key: "k".into() } };
        assert!(matches!(node.apply(&get), NodeReply::Value { found: Some(_) }));
        node.install_config(&config.with_migrate(shard, &["N1"]));
        assert_eq!(node.apply(&put(2, 4, "k", "w")), NodeReply::Applied);
    }

    #[test]
    fn dirty_tracking_captures_writes_in_range() {
        let node = NodeCtx::new("N1");
        let config = ClusterConfig::bootstrap(&["N1"], 1);
        node.install_config(&config);
        let shard = config.shards[0].id;
        let (start, end) = config.shard_range(shard).unwrap();
        node.begin_handoff(shard, start, end);
        node.apply(&put(1, 1, "k", "v"));
        let dirty = node.take_dirty(shard);
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty[0].0, "k");
        assert!(node.take_dirty(shard).is_empty(), "drained");
    }

    #[test]
    fn install_gc_drops_foreign_shards() {
        let node = NodeCtx::new("N1");
        let config = ClusterConfig::bootstrap(&["N1"], 1);
        node.install_config(&config);
        for i in 0..32 {
            node.apply(&put(1, i + 1, &format!("k{i}"), "v"));
        }
        let migrated = {
            // Move every shard away from N1.
            let grown = config.with_join("N2");
            let mut next = grown.clone();
            next.epoch += 1;
            for shard in &mut next.shards {
                shard.replicas = vec!["N2".to_string()];
            }
            node.install_config(&grown);
            next
        };
        node.install_config(&migrated);
        assert_eq!(node.entry_count(), 0, "GC removed every foreign key");
    }
}
