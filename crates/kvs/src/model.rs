//! The in-driver per-key consistency model.
//!
//! The scenario harness drives one logical operation at a time, so the
//! checkable contract is per-key quorum consistency: a read that
//! succeeds must return either the latest *committed* write (one that
//! reached its write quorum — quorum intersection makes it visible to
//! every read quorum) or a newer *pending* write (one that failed at
//! the client but may have landed on some replicas — a failed put is
//! indeterminate, exactly like a timed-out write in a real quorum
//! store). Anything else — a lost committed write, a resurrected old
//! version, a fabricated value — is a checker violation, which the
//! chaos matrix turns into a failing seed with a dumped schedule.

use crate::node::Versioned;
use std::collections::BTreeMap;

/// Per-key state the checker tracks.
#[derive(Debug, Default)]
struct KeyModel {
    /// The latest write known to have reached its write quorum.
    committed: Option<Versioned>,
    /// Failed (indeterminate) writes that may still surface in reads,
    /// keyed by version.
    pending: BTreeMap<u64, String>,
}

/// The checker: feed it every operation result; it panics-by-Err on the
/// first inconsistency.
#[derive(Debug, Default)]
pub struct ConsistencyModel {
    keys: BTreeMap<String, KeyModel>,
    checked: u64,
}

impl ConsistencyModel {
    /// A fresh model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Operations checked so far.
    pub fn checked(&self) -> u64 {
        self.checked
    }

    /// Records a put the client saw succeed (write quorum reached).
    pub fn put_committed(&mut self, key: &str, version: u64, value: &str) {
        self.checked += 1;
        let entry = self.keys.entry(key.to_string()).or_default();
        if entry.committed.as_ref().map(|c| c.version < version).unwrap_or(true) {
            entry.committed = Some(Versioned { version, value: value.to_string() });
        }
        // Quorum intersection: every later read quorum sees at least
        // this version, so older pending writes can never surface again.
        entry.pending.retain(|&v, _| v > version);
    }

    /// Records a put the client saw fail — indeterminate: it may have
    /// landed on some replicas and surface in later reads.
    pub fn put_failed(&mut self, key: &str, version: u64, value: &str) {
        self.checked += 1;
        let entry = self.keys.entry(key.to_string()).or_default();
        let committed = entry.committed.as_ref().map(|c| c.version).unwrap_or(0);
        if version > committed {
            entry.pending.insert(version, value.to_string());
        }
    }

    /// Checks a get the client saw succeed. `found` is the quorum-max
    /// value returned.
    pub fn get_ok(&mut self, key: &str, found: &Option<Versioned>) -> Result<(), String> {
        self.checked += 1;
        let entry = self.keys.entry(key.to_string()).or_default();
        match found {
            None => {
                if let Some(committed) = &entry.committed {
                    return Err(format!(
                        "get({key}) returned NotFound but version {} (\"{}\") is committed",
                        committed.version, committed.value
                    ));
                }
                Ok(())
            }
            Some(v) => {
                if let Some(committed) = &entry.committed {
                    if v.version < committed.version {
                        return Err(format!(
                            "get({key}) returned stale version {} < committed {}",
                            v.version, committed.version
                        ));
                    }
                    if v.version == committed.version {
                        return if v.value == committed.value {
                            Ok(())
                        } else {
                            Err(format!(
                                "get({key}) returned \"{}\" at committed version {}, expected \"{}\"",
                                v.value, v.version, committed.value
                            ))
                        };
                    }
                }
                match entry.pending.get(&v.version) {
                    Some(value) if *value == v.value => Ok(()),
                    Some(value) => Err(format!(
                        "get({key}) returned \"{}\" at version {}, but that write was \"{}\"",
                        v.value, v.version, value
                    )),
                    None => Err(format!(
                        "get({key}) fabricated version {} (\"{}\"): never written",
                        v.version, v.value
                    )),
                }
            }
        }
    }

    /// Records a get the client saw fail (typed error). Nothing to
    /// learn — failed reads carry no consistency obligation.
    pub fn get_failed(&mut self, _key: &str) {
        self.checked += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(version: u64, value: &str) -> Option<Versioned> {
        Some(Versioned { version, value: value.to_string() })
    }

    #[test]
    fn committed_writes_must_be_visible() {
        let mut model = ConsistencyModel::new();
        model.put_committed("k", 1, "a");
        assert!(model.get_ok("k", &v(1, "a")).is_ok());
        assert!(model.get_ok("k", &None).is_err(), "lost committed write");
        assert!(model.get_ok("k", &v(1, "b")).is_err(), "wrong value");
    }

    #[test]
    fn pending_writes_may_or_may_not_surface() {
        let mut model = ConsistencyModel::new();
        model.put_committed("k", 1, "a");
        model.put_failed("k", 2, "b");
        assert!(model.get_ok("k", &v(1, "a")).is_ok(), "pending may be invisible");
        assert!(model.get_ok("k", &v(2, "b")).is_ok(), "pending may surface");
        assert!(model.get_ok("k", &v(2, "x")).is_err(), "but not with a forged value");
        assert!(model.get_ok("k", &v(3, "c")).is_err(), "never-written version");
    }

    #[test]
    fn a_commit_buries_older_pending_writes() {
        let mut model = ConsistencyModel::new();
        model.put_failed("k", 1, "a");
        model.put_committed("k", 2, "b");
        assert!(model.get_ok("k", &v(1, "a")).is_err(), "quorum intersection buries v1");
        assert!(model.get_ok("k", &v(2, "b")).is_ok());
    }
}
