//! The versioned cluster model: census, shard map, and replica
//! assignment, all derived deterministically so every member that
//! commits the same [`ClusterConfig`] routes identically.
//!
//! * **Key → shard** is a range map over the FNV-1a hash of the key:
//!   shards own half-open, sorted ranges of the `u64` hash space, so a
//!   [`SplitShard`](crate::cluster::SimCluster::split_shard) only moves
//!   keys of the affected shard (minimal disruption).
//! * **Shard → replicas** is rendezvous hashing over `(member, shard
//!   id)`: a census change only reassigns the shards whose top-scoring
//!   members actually changed, never a full reshuffle.
//! * **Epoch fencing**: every config carries a monotonically increasing
//!   `epoch`; data-plane requests are stamped with the client's epoch
//!   and rejected as stale whenever it disagrees with the replica's.

use serde::{Deserialize, Serialize};

/// FNV-1a, the repo's standing content-hash primitive (also used by
/// `SharedStore::content_hash`); deterministic across processes and
/// platforms, which is what makes routing agreement possible without
/// communication.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Stable shard identity. Ranges move on splits; ids never do.
pub type ShardId = u32;

/// One shard: a half-open range `[start, next shard's start)` of the
/// hashed key space, owned by an ordered replica set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Shard {
    /// Stable identity, unique within a config lineage.
    pub id: ShardId,
    /// Inclusive lower bound of the owned hash range. The upper bound
    /// is the next shard's `start` (the last shard owns through
    /// `u64::MAX`).
    pub start: u64,
    /// Members replicating this shard, sorted by name.
    pub replicas: Vec<String>,
}

/// The versioned cluster configuration every member agrees on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Monotonically increasing fencing token; bumped by every
    /// committed reconfiguration.
    pub epoch: u64,
    /// The member census, sorted by name.
    pub census: Vec<String>,
    /// The shard map, sorted by `start`, covering the whole hash space.
    pub shards: Vec<Shard>,
    /// Allocator for stable shard ids across splits.
    pub next_shard_id: ShardId,
}

impl ClusterConfig {
    /// Replication factor: 3-way where the census allows, never more
    /// members than exist.
    pub fn replication_factor(&self) -> usize {
        self.census.len().min(3)
    }

    /// Write quorum: a majority of the replica set.
    pub fn write_quorum(&self) -> usize {
        self.replication_factor() / 2 + 1
    }

    /// Read quorum: also a majority, so every read quorum intersects
    /// every write quorum (`R + W > RF`).
    pub fn read_quorum(&self) -> usize {
        self.replication_factor() / 2 + 1
    }

    /// A fresh epoch-1 config over `census` with `n_shards` evenly
    /// spaced shards.
    pub fn bootstrap(census: &[&str], n_shards: u32) -> Self {
        assert!(n_shards > 0, "a cluster needs at least one shard");
        let mut names: Vec<String> = census.iter().map(|s| s.to_string()).collect();
        names.sort();
        names.dedup();
        let stride = u64::MAX / u64::from(n_shards);
        let shards = (0..n_shards)
            .map(|i| Shard { id: i, start: u64::from(i) * stride, replicas: Vec::new() })
            .collect();
        let mut config = Self { epoch: 1, census: names, shards, next_shard_id: n_shards };
        config.assign_replicas();
        config
    }

    /// Rendezvous score of `member` for `shard`: highest-random-weight
    /// hashing keeps assignments stable under census churn.
    fn score(member: &str, shard: ShardId) -> u64 {
        let mut bytes = Vec::with_capacity(member.len() + 5);
        bytes.extend_from_slice(member.as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&shard.to_le_bytes());
        fnv1a(&bytes)
    }

    /// Recomputes every shard's replica set from the current census by
    /// rendezvous hashing: the `RF` members with the highest
    /// `score(member, shard.id)` win, ties broken by name.
    pub fn assign_replicas(&mut self) {
        let rf = self.replication_factor();
        for shard in &mut self.shards {
            let mut scored: Vec<(u64, &String)> =
                self.census.iter().map(|m| (Self::score(m, shard.id), m)).collect();
            scored.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(b.1)));
            let mut replicas: Vec<String> =
                scored.into_iter().take(rf).map(|(_, m)| m.clone()).collect();
            replicas.sort();
            shard.replicas = replicas;
        }
    }

    /// The shard owning `key`. Total: every hash lands in exactly one
    /// range.
    pub fn shard_of(&self, key: &str) -> &Shard {
        let hash = fnv1a(key.as_bytes());
        self.shard_at(hash)
    }

    /// The shard owning a raw hash value.
    pub fn shard_at(&self, hash: u64) -> &Shard {
        let idx = match self.shards.binary_search_by(|s| s.start.cmp(&hash)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        &self.shards[idx]
    }

    /// The half-open hash range `[start, end)` of the shard with `id`
    /// (`end == u64::MAX` means "through the top, inclusive").
    pub fn shard_range(&self, id: ShardId) -> Option<(u64, u64)> {
        let idx = self.shards.iter().position(|s| s.id == id)?;
        let end = self.shards.get(idx + 1).map(|s| s.start).unwrap_or(u64::MAX);
        Some((self.shards[idx].start, end))
    }

    /// Whether `member` replicates the shard owning `hash`.
    pub fn is_replica(&self, member: &str, hash: u64) -> bool {
        self.shard_at(hash).replicas.iter().any(|r| r == member)
    }

    /// The successor config for a member joining: census grows, epoch
    /// bumps, replicas reassign by rendezvous.
    pub fn with_join(&self, member: &str) -> Self {
        let mut next = self.clone();
        next.epoch += 1;
        if !next.census.iter().any(|m| m == member) {
            next.census.push(member.to_string());
            next.census.sort();
        }
        next.assign_replicas();
        next
    }

    /// The successor config for a member leaving: census shrinks, epoch
    /// bumps, replicas reassign.
    pub fn with_leave(&self, member: &str) -> Self {
        let mut next = self.clone();
        next.epoch += 1;
        next.census.retain(|m| m != member);
        assert!(!next.census.is_empty(), "cannot remove the last member");
        next.assign_replicas();
        next
    }

    /// The successor config splitting shard `id` at the midpoint of its
    /// range: the old shard keeps the lower half, a fresh id owns the
    /// upper half. Every other shard is untouched.
    pub fn with_split(&self, id: ShardId) -> Self {
        let mut next = self.clone();
        next.epoch += 1;
        let (start, end) = self.shard_range(id).expect("split of an unknown shard");
        let mid = start + (end - start) / 2;
        assert!(mid > start, "shard range too narrow to split");
        let new_id = next.next_shard_id;
        next.next_shard_id += 1;
        let idx = next.shards.iter().position(|s| s.id == id).unwrap();
        let mut scored: Vec<(u64, &String)> =
            next.census.iter().map(|m| (Self::score(m, new_id), m)).collect();
        scored.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(b.1)));
        let mut replicas: Vec<String> =
            scored.into_iter().take(next.replication_factor()).map(|(_, m)| m.clone()).collect();
        replicas.sort();
        next.shards.insert(idx + 1, Shard { id: new_id, start: mid, replicas });
        next
    }

    /// The successor config migrating shard `id` onto an explicit
    /// replica set (sorted, deduplicated; must be census members).
    pub fn with_migrate(&self, id: ShardId, replicas: &[&str]) -> Self {
        let mut next = self.clone();
        next.epoch += 1;
        let shard = next.shards.iter_mut().find(|s| s.id == id).expect("unknown shard");
        let mut set: Vec<String> = replicas.iter().map(|r| r.to_string()).collect();
        set.sort();
        set.dedup();
        assert!(!set.is_empty(), "a shard needs at least one replica");
        for r in &set {
            assert!(next.census.iter().any(|m| m == r), "replica {r} not in census");
        }
        shard.replicas = set;
        next
    }

    /// The set of `(shard id, member)` pairs that gain a replica going
    /// from `self` to `next` — exactly the state transfers a
    /// reconfiguration must perform before committing `next`.
    pub fn gained_replicas(&self, next: &Self) -> Vec<(ShardId, String)> {
        let mut gains = Vec::new();
        for shard in &next.shards {
            let old: &[String] = self
                .shards
                .iter()
                .find(|s| s.id == shard.id)
                .map(|s| s.replicas.as_slice())
                // A split's fresh shard: its keys previously lived in
                // the parent shard, so "old" is the parent's replicas.
                .unwrap_or_else(|| {
                    let (start, _) = next.shard_range(shard.id).unwrap();
                    self.shard_at(start).replicas.as_slice()
                });
            for member in &shard.replicas {
                if !old.contains(member) {
                    gains.push((shard.id, member.clone()));
                }
            }
        }
        gains
    }

    /// A donor for `(shard, recipient)` transfers under the transition
    /// `self → next`: a current replica that is alive, preferring ones
    /// that remain replicas afterwards.
    pub fn donor_for(
        &self,
        next: &Self,
        shard: ShardId,
        recipient: &str,
        alive: &[String],
    ) -> Option<String> {
        let (start, _) = next.shard_range(shard).or_else(|| self.shard_range(shard))?;
        let current = self.shard_at(start);
        let survivors: Vec<&String> = current
            .replicas
            .iter()
            .filter(|r| r.as_str() != recipient && alive.contains(r))
            .collect();
        survivors
            .iter()
            .find(|r| next.shards.iter().any(|s| s.id == shard && s.replicas.contains(r)))
            .or(survivors.first())
            .map(|r| (*r).clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_covers_the_hash_space() {
        let config = ClusterConfig::bootstrap(&["N1", "N2", "N3"], 8);
        assert_eq!(config.epoch, 1);
        assert_eq!(config.shards.len(), 8);
        assert_eq!(config.shards[0].start, 0);
        for shard in &config.shards {
            assert_eq!(shard.replicas.len(), 3);
        }
        // Every key routes somewhere.
        for key in ["", "a", "hello", "key-123"] {
            let shard = config.shard_of(key);
            assert!(shard.replicas.len() == 3);
        }
    }

    #[test]
    fn join_changes_only_rendezvous_winners() {
        let before = ClusterConfig::bootstrap(&["N1", "N2", "N3"], 8);
        let after = before.with_join("N4");
        assert_eq!(after.epoch, 2);
        assert_eq!(after.census, vec!["N1", "N2", "N3", "N4"]);
        // Shard ranges are untouched by a join.
        for (b, a) in before.shards.iter().zip(after.shards.iter()) {
            assert_eq!((b.id, b.start), (a.id, a.start));
        }
        // The only gains are N4 displacing a loser somewhere.
        for (_, member) in before.gained_replicas(&after) {
            assert_eq!(member, "N4");
        }
    }

    #[test]
    fn split_moves_only_the_affected_range() {
        let before = ClusterConfig::bootstrap(&["N1", "N2", "N3"], 4);
        let victim = before.shards[1].id;
        let after = before.with_split(victim);
        assert_eq!(after.shards.len(), 5);
        let (old_start, old_end) = before.shard_range(victim).unwrap();
        let (new_start, new_end) = after.shard_range(victim).unwrap();
        assert_eq!(old_start, new_start);
        assert!(new_end < old_end);
        // Keys outside the split range route exactly as before.
        for i in 0..512u64 {
            let key = format!("key-{i}");
            let hash = fnv1a(key.as_bytes());
            if !(old_start..old_end).contains(&hash) {
                assert_eq!(before.shard_at(hash).id, after.shard_at(hash).id);
            }
        }
    }

    #[test]
    fn donor_prefers_surviving_replicas() {
        let before = ClusterConfig::bootstrap(&["N1", "N2", "N3", "N4"], 4);
        let shard = before.shards[0].clone();
        let recipient = before.census.iter().find(|m| !shard.replicas.contains(m)).cloned();
        if let Some(recipient) = recipient {
            let next = before.with_migrate(
                shard.id,
                &[recipient.as_str(), shard.replicas[0].as_str(), shard.replicas[1].as_str()],
            );
            let donor = before
                .donor_for(&next, shard.id, &recipient, &before.census)
                .expect("a live donor exists");
            assert!(shard.replicas.contains(&donor));
        }
    }
}
