//! The scenario harness: a whole simulated cluster — four candidate
//! nodes plus a client — driven one logical operation at a time over a
//! single [`SimNet`], so chaos schedules (and partitions) span
//! reconfigurations.
//!
//! **Dynamic census over static location sets.** Choreographies here are
//! census-polymorphic (generic over a `LocationSet`), but Rust resolves
//! location sets at compile time. The bridge is the dispatch macros
//! below: the runtime census — a sorted list of live member names out of
//! the candidate universe `N1..N4` — selects a match arm that binds the
//! corresponding type-level set and instantiates the *same generic
//! choreography text* at it. Membership changes between sessions simply
//! select different arms; this is the paper's "the caller picks the
//! census" (§3.4) driven by runtime data.
//!
//! Every client operation, config round, and shard pull is one
//! short-lived choreography session: the driver allocates a fresh
//! session id, spawns one thread per participant with its own
//! [`Endpoint`] over the shared net, and joins them. Node state persists
//! across sessions in [`NodeCtx`] handles. The driver is sequential and
//! each link has a single sending thread per session, so runs are
//! deterministic per fault-plan seed.

use crate::config::{ClusterConfig, ShardId};
use crate::data_plane::{ClusterOp, KvsError, OpOutcome};
use crate::model::ConsistencyModel;
use crate::node::{KvsOp, NodeCtx, StampedRequest, Versioned};
use crate::reconfig::{InstallConfig, PullMode, PullReport, ShardPull};
use chorus_core::{ChoreographyLocation as _, Endpoint, LocationSet};
use chorus_patterns::Misbehavior;
use chorus_protocols::roles::Client;
use chorus_transport::{FaultPlan, SimNet, SimTransport};
use std::collections::BTreeMap;
use std::marker::PhantomData;

chorus_core::locations! { N1, N2, N3, N4 }

/// The transport universe: every session in the harness runs over this
/// set, with each choreography's census a subset of it.
pub type Universe = chorus_core::LocationSet!(Client, N1, N2, N3, N4);

/// The candidate node names, in dispatch order.
pub const NODE_NAMES: [&str; 4] = ["N1", "N2", "N3", "N4"];

/// Binds the runtime census (a sorted slice of node names) to its
/// type-level location set and invokes `$cb!(Role, ...)` with the
/// matching roles.
macro_rules! dispatch_members {
    ($names:expr, $cb:ident) => {
        match $names {
            ["N1"] => $cb!(N1),
            ["N2"] => $cb!(N2),
            ["N3"] => $cb!(N3),
            ["N4"] => $cb!(N4),
            ["N1", "N2"] => $cb!(N1, N2),
            ["N1", "N3"] => $cb!(N1, N3),
            ["N1", "N4"] => $cb!(N1, N4),
            ["N2", "N3"] => $cb!(N2, N3),
            ["N2", "N4"] => $cb!(N2, N4),
            ["N3", "N4"] => $cb!(N3, N4),
            ["N1", "N2", "N3"] => $cb!(N1, N2, N3),
            ["N1", "N2", "N4"] => $cb!(N1, N2, N4),
            ["N1", "N3", "N4"] => $cb!(N1, N3, N4),
            ["N2", "N3", "N4"] => $cb!(N2, N3, N4),
            ["N1", "N2", "N3", "N4"] => $cb!(N1, N2, N3, N4),
            other => panic!("census {other:?} outside the candidate universe"),
        }
    };
}

/// Binds a runtime `(proposer, census)` pair to its types and invokes
/// `$cb!(Proposer ; Role, ...)`.
macro_rules! dispatch_round {
    ($proposer:expr, $names:expr, $cb:ident) => {
        match ($proposer, $names) {
            ("N1", ["N1"]) => $cb!(N1; N1),
            ("N2", ["N2"]) => $cb!(N2; N2),
            ("N3", ["N3"]) => $cb!(N3; N3),
            ("N4", ["N4"]) => $cb!(N4; N4),
            ("N1", ["N1", "N2"]) => $cb!(N1; N1, N2),
            ("N2", ["N1", "N2"]) => $cb!(N2; N1, N2),
            ("N1", ["N1", "N3"]) => $cb!(N1; N1, N3),
            ("N3", ["N1", "N3"]) => $cb!(N3; N1, N3),
            ("N1", ["N1", "N4"]) => $cb!(N1; N1, N4),
            ("N4", ["N1", "N4"]) => $cb!(N4; N1, N4),
            ("N2", ["N2", "N3"]) => $cb!(N2; N2, N3),
            ("N3", ["N2", "N3"]) => $cb!(N3; N2, N3),
            ("N2", ["N2", "N4"]) => $cb!(N2; N2, N4),
            ("N4", ["N2", "N4"]) => $cb!(N4; N2, N4),
            ("N3", ["N3", "N4"]) => $cb!(N3; N3, N4),
            ("N4", ["N3", "N4"]) => $cb!(N4; N3, N4),
            ("N1", ["N1", "N2", "N3"]) => $cb!(N1; N1, N2, N3),
            ("N2", ["N1", "N2", "N3"]) => $cb!(N2; N1, N2, N3),
            ("N3", ["N1", "N2", "N3"]) => $cb!(N3; N1, N2, N3),
            ("N1", ["N1", "N2", "N4"]) => $cb!(N1; N1, N2, N4),
            ("N2", ["N1", "N2", "N4"]) => $cb!(N2; N1, N2, N4),
            ("N4", ["N1", "N2", "N4"]) => $cb!(N4; N1, N2, N4),
            ("N1", ["N1", "N3", "N4"]) => $cb!(N1; N1, N3, N4),
            ("N3", ["N1", "N3", "N4"]) => $cb!(N3; N1, N3, N4),
            ("N4", ["N1", "N3", "N4"]) => $cb!(N4; N1, N3, N4),
            ("N2", ["N2", "N3", "N4"]) => $cb!(N2; N2, N3, N4),
            ("N3", ["N2", "N3", "N4"]) => $cb!(N3; N2, N3, N4),
            ("N4", ["N2", "N3", "N4"]) => $cb!(N4; N2, N3, N4),
            ("N1", ["N1", "N2", "N3", "N4"]) => $cb!(N1; N1, N2, N3, N4),
            ("N2", ["N1", "N2", "N3", "N4"]) => $cb!(N2; N1, N2, N3, N4),
            ("N3", ["N1", "N2", "N3", "N4"]) => $cb!(N3; N1, N2, N3, N4),
            ("N4", ["N1", "N2", "N3", "N4"]) => $cb!(N4; N1, N2, N3, N4),
            (proposer, census) => {
                panic!("proposer {proposer:?} not dispatchable in census {census:?}")
            }
        }
    };
}

/// Binds a runtime ordered `(donor, recipient)` pair to its types and
/// invokes `$cb!(Donor, Recipient)`.
macro_rules! dispatch_pair {
    ($donor:expr, $recipient:expr, $cb:ident) => {
        match ($donor, $recipient) {
            ("N1", "N2") => $cb!(N1, N2),
            ("N1", "N3") => $cb!(N1, N3),
            ("N1", "N4") => $cb!(N1, N4),
            ("N2", "N1") => $cb!(N2, N1),
            ("N2", "N3") => $cb!(N2, N3),
            ("N2", "N4") => $cb!(N2, N4),
            ("N3", "N1") => $cb!(N3, N1),
            ("N3", "N2") => $cb!(N3, N2),
            ("N3", "N4") => $cb!(N3, N4),
            ("N4", "N1") => $cb!(N4, N1),
            ("N4", "N2") => $cb!(N4, N2),
            ("N4", "N3") => $cb!(N4, N3),
            pair => panic!("transfer pair {pair:?} outside the candidate universe"),
        }
    };
}

/// One planned state transfer of a reconfiguration: `recipient` gains
/// the range `[start, end)` of `shard`, sourced from every live current
/// replica (the union of donors covers every write-quorum-committed
/// entry).
#[derive(Debug, Clone)]
pub struct Transfer {
    /// Target shard id under the successor config.
    pub shard: ShardId,
    /// Range lower bound (inclusive).
    pub start: u64,
    /// Range upper bound (exclusive; `u64::MAX` is inclusive-top).
    pub end: u64,
    /// The member gaining the replica.
    pub recipient: String,
    /// Live current replicas to pull from.
    pub donors: Vec<String>,
}

/// What the final, frozen step of a live handoff cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreezeWindow {
    /// Frames delivered on the sim fabric during the window
    /// (deterministic per seed).
    pub frames: u64,
    /// Wall-clock span of the window (informational).
    pub wall: std::time::Duration,
}

/// The simulated cluster.
pub struct SimCluster {
    net: SimNet<Universe>,
    nodes: BTreeMap<&'static str, NodeCtx>,
    client_config: ClusterConfig,
    next_version: u64,
    next_session: u64,
    chunk: usize,
    /// The per-key consistency checker fed by [`SimCluster::put`] /
    /// [`SimCluster::get`].
    pub model: ConsistencyModel,
    last_freeze_window: Option<FreezeWindow>,
}

impl SimCluster {
    /// Boots a cluster over `plan` with the given initial census (a
    /// subset of [`NODE_NAMES`]) and shard count.
    pub fn new(plan: FaultPlan, census: &[&str], shards: u32) -> Self {
        let net = SimNet::<Universe>::new(plan);
        let nodes: BTreeMap<&'static str, NodeCtx> =
            NODE_NAMES.iter().map(|n| (*n, NodeCtx::new(n))).collect();
        let config = ClusterConfig::bootstrap(census, shards);
        for member in &config.census {
            nodes[member.as_str()].install_config(&config);
        }
        Self {
            net,
            nodes,
            client_config: config,
            next_version: 0,
            next_session: 0,
            chunk: 16,
            model: ConsistencyModel::new(),
            last_freeze_window: None,
        }
    }

    /// The underlying net (for schedule dumps and virtual time).
    pub fn net(&self) -> &SimNet<Universe> {
        &self.net
    }

    /// A node's state handle.
    pub fn node(&self, name: &str) -> &NodeCtx {
        &self.nodes[name]
    }

    /// The client's cached config view.
    pub fn config(&self) -> &ClusterConfig {
        &self.client_config
    }

    /// Cost of the last freeze window (final deltas + config commit):
    /// frames delivered on the sim fabric while writes to the moving
    /// range were frozen, plus the wall-clock span. Frames are
    /// deterministic per seed; wall time is informational.
    pub fn last_freeze_window(&self) -> Option<FreezeWindow> {
        self.last_freeze_window.clone()
    }

    /// Sets the transfer chunk size (entries per frame).
    pub fn set_chunk(&mut self, chunk: usize) {
        self.chunk = chunk.max(1);
    }

    /// Overrides the client's cached config view — test hook for
    /// forcing stale-epoch stamps.
    pub fn set_config_for_test(&mut self, config: ClusterConfig) {
        self.client_config = config;
    }

    fn next_version(&mut self) -> u64 {
        self.next_version += 1;
        self.next_version
    }

    fn next_session_id(&mut self) -> u64 {
        self.next_session += 1;
        self.next_session
    }

    /// Re-reads the config from the freshest live node, modeling config
    /// discovery (a client that got a stale-epoch rejection asks the
    /// cluster for the current config before retrying).
    pub fn refresh_config(&mut self) {
        let freshest = self
            .nodes
            .values()
            .filter(|n| n.is_up())
            .filter_map(|n| n.config())
            .max_by_key(|c| c.epoch);
        if let Some(config) = freshest {
            if config.epoch > self.client_config.epoch {
                self.client_config = config;
            }
        }
    }

    /// One data-plane round against the client's current census view.
    /// Returns the stamped version alongside the outcome so callers can
    /// feed the consistency model.
    pub fn raw_op(&mut self, op: KvsOp) -> (u64, Result<OpOutcome, KvsError>) {
        let version = self.next_version();
        let request = StampedRequest { epoch: self.client_config.epoch, version, op };
        let sid = self.next_session_id();
        let census = self.client_config.census.clone();
        let names: Vec<&str> = census.iter().map(|s| s.as_str()).collect();

        macro_rules! run_op {
            ($($role:ident),+) => {{
                type M = chorus_core::LocationSet!($($role),+);
                let mut handles = Vec::new();
                $(
                    {
                        let net = self.net.clone();
                        let ctx = self.nodes[<$role>::NAME].clone();
                        handles.push(std::thread::spawn(move || {
                            let endpoint = Endpoint::new(SimTransport::new($role, net));
                            let session = endpoint.session_with_id(sid);
                            let _ = session.epp_and_run(ClusterOp::<M, _, _> {
                                request: session.remote(Client),
                                nodes: session.local_faceted(ctx),
                                config: session.remote(Client),
                                phantom: PhantomData,
                            });
                        }));
                    }
                )+
                let net = self.net.clone();
                let request = request.clone();
                let config = self.client_config.clone();
                let client = std::thread::spawn(move || {
                    let endpoint = Endpoint::new(SimTransport::new(Client, net));
                    let session = endpoint.session_with_id(sid);
                    let out = session.epp_and_run(ClusterOp::<M, _, _> {
                        request: session.local(request),
                        nodes: session.remote_faceted(<M>::new()),
                        config: session.local(config),
                        phantom: PhantomData,
                    });
                    session.unwrap(out)
                });
                for handle in handles {
                    handle.join().expect("node endpoint panicked");
                }
                client.join().expect("client endpoint panicked")
            }};
        }
        let result = dispatch_members!(names.as_slice(), run_op);
        (version, result)
    }

    /// A client `Put` with stale-epoch refresh-and-retry, feeding the
    /// consistency model. Returns the committed version or the last
    /// typed error.
    pub fn put(&mut self, key: &str, value: &str) -> Result<u64, KvsError> {
        let mut last = None;
        for _attempt in 0..3 {
            let (version, result) =
                self.raw_op(KvsOp::Put { key: key.to_string(), value: value.to_string() });
            match result {
                Ok(OpOutcome::Put { version }) => {
                    self.model.put_committed(key, version, value);
                    return Ok(version);
                }
                Ok(other) => panic!("put answered with {other:?}"),
                Err(err) => {
                    self.model.put_failed(key, version, value);
                    let retry = matches!(err, KvsError::StaleEpoch { .. });
                    last = Some(err);
                    if retry {
                        self.refresh_config();
                        continue;
                    }
                    break;
                }
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    /// A client `Get` with stale-epoch refresh-and-retry, checked
    /// against the consistency model.
    ///
    /// # Panics
    ///
    /// Panics on a model violation (a lost committed write, stale or
    /// fabricated value) — the chaos matrix turns this into a failing
    /// seed with a dumped schedule.
    pub fn get(&mut self, key: &str) -> Result<Option<Versioned>, KvsError> {
        let mut last = None;
        for _attempt in 0..3 {
            let (_, result) = self.raw_op(KvsOp::Get { key: key.to_string() });
            match result {
                Ok(OpOutcome::Get { found }) => {
                    if let Err(violation) = self.model.get_ok(key, &found) {
                        panic!("consistency violation: {violation}");
                    }
                    return Ok(found);
                }
                Ok(other) => panic!("get answered with {other:?}"),
                Err(err) => {
                    self.model.get_failed(key);
                    let retry = matches!(err, KvsError::StaleEpoch { .. });
                    last = Some(err);
                    if retry {
                        self.refresh_config();
                        continue;
                    }
                    break;
                }
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    /// One two-party shard pull session.
    fn pull(
        &mut self,
        donor: &str,
        recipient: &str,
        shard: ShardId,
        range: (u64, u64),
        mode: PullMode,
    ) -> PullReport {
        let sid = self.next_session_id();
        let chunk = self.chunk;
        macro_rules! run_pull {
            ($d:ident, $r:ident) => {{
                let mut handles = Vec::new();
                for ctx in [self.nodes[<$d>::NAME].clone(), self.nodes[<$r>::NAME].clone()] {
                    let net = self.net.clone();
                    let donor_side = ctx.name() == <$d>::NAME;
                    handles.push(std::thread::spawn(move || {
                        let report = if donor_side {
                            let endpoint = Endpoint::new(SimTransport::new($d, net));
                            let session = endpoint.session_with_id(sid);
                            session.epp_and_run(ShardPull::<'_, $d, $r> {
                                shard,
                                range,
                                mode,
                                chunk,
                                ctx: &ctx,
                                phantom: PhantomData,
                            })
                        } else {
                            let endpoint = Endpoint::new(SimTransport::new($r, net));
                            let session = endpoint.session_with_id(sid);
                            session.epp_and_run(ShardPull::<'_, $d, $r> {
                                shard,
                                range,
                                mode,
                                chunk,
                                ctx: &ctx,
                                phantom: PhantomData,
                            })
                        };
                        report
                    }));
                }
                let reports: Vec<PullReport> = handles
                    .into_iter()
                    .map(|h| h.join().expect("pull endpoint panicked"))
                    .collect();
                assert_eq!(reports[0], reports[1], "pull sides agree on the report");
                reports.into_iter().next().unwrap()
            }};
        }
        dispatch_pair!(donor, recipient, run_pull)
    }

    /// One config-agreement round over `census` (must be sorted) with
    /// the given proposer; every member validates, installs on commit.
    /// Returns each member's outcome.
    fn install_round(
        &mut self,
        proposer: &str,
        census: &[String],
        proposed: &ClusterConfig,
    ) -> BTreeMap<&'static str, Result<ClusterConfig, Misbehavior>> {
        let sid = self.next_session_id();
        let quorum = census.len() / 2 + 1;
        let names: Vec<&str> = census.iter().map(|s| s.as_str()).collect();
        macro_rules! run_install {
            ($p:ident; $($role:ident),+) => {{
                type M = chorus_core::LocationSet!($($role),+);
                let mut handles = Vec::new();
                $(
                    {
                        let net = self.net.clone();
                        let ctx = self.nodes[<$role>::NAME].clone();
                        let proposed = proposed.clone();
                        handles.push(std::thread::spawn(move || {
                            let endpoint = Endpoint::new(SimTransport::new($role, net));
                            let session = endpoint.session_with_id(sid);
                            let out = session.epp_and_run(InstallConfig::<'_, $p, M, _, _, _> {
                                proposed,
                                quorum,
                                ctx: &ctx,
                                phantom: PhantomData,
                            });
                            (<$role>::NAME, session.unwrap_faceted(out))
                        }));
                    }
                )+
                handles
                    .into_iter()
                    .map(|h| h.join().expect("config-round endpoint panicked"))
                    .collect::<BTreeMap<_, _>>()
            }};
        }
        dispatch_round!(proposer, names.as_slice(), run_install)
    }

    /// Plans the state transfers of the transition `current → next`:
    /// every `(shard, member)` gaining a replica pulls the range from
    /// all live current replicas.
    pub fn plan_transfers(&self, next: &ClusterConfig) -> Vec<Transfer> {
        let current = &self.client_config;
        current
            .gained_replicas(next)
            .into_iter()
            .map(|(shard, recipient)| {
                let (start, end) =
                    next.shard_range(shard).expect("gained shard exists in the successor");
                let donors = current
                    .shard_at(start)
                    .replicas
                    .iter()
                    .filter(|r| **r != recipient && self.nodes[r.as_str()].is_up())
                    .cloned()
                    .collect();
                Transfer { shard, start, end, recipient, donors }
            })
            .collect()
    }

    /// Phase 1 of a live handoff: snapshot pulls with dirty-key
    /// tracking armed at the donors. Writes keep flowing; the driver is
    /// free to interleave [`SimCluster::put`]/[`SimCluster::get`]
    /// between calls. Returns entries shipped.
    pub fn precopy(&mut self, transfer: &Transfer) -> u64 {
        let mut shipped = 0;
        for donor in transfer.donors.clone() {
            shipped += self
                .pull(
                    &donor,
                    &transfer.recipient.clone(),
                    transfer.shard,
                    (transfer.start, transfer.end),
                    PullMode::Snapshot { track: true },
                )
                .entries;
        }
        shipped
    }

    /// Phase 2: freeze windows + final deltas + the config-commit
    /// round. Returns whether the new epoch committed; on abort, every
    /// donor lifts its freeze. The freeze window (virtual time) is
    /// recorded for the bench.
    pub fn finalize(&mut self, next: &ClusterConfig, transfers: &[Transfer]) -> bool {
        let frames_start = self.net.messages_received();
        let wall_start = std::time::Instant::now();
        for transfer in transfers.iter().cloned() {
            for donor in &transfer.donors {
                self.pull(
                    donor,
                    &transfer.recipient,
                    transfer.shard,
                    (transfer.start, transfer.end),
                    PullMode::FreezeDelta,
                );
            }
        }
        let round_census = round_census(&self.client_config, next);
        let proposer = round_census
            .iter()
            .find(|m| self.nodes[m.as_str()].is_up())
            .cloned()
            .expect("a live member must exist to propose");
        let outcomes = self.install_round(&proposer, &round_census, next);
        let committed =
            outcomes.iter().any(|(name, outcome)| self.nodes[*name].is_up() && outcome.is_ok());
        self.last_freeze_window = Some(FreezeWindow {
            frames: self.net.messages_received() - frames_start,
            wall: wall_start.elapsed(),
        });
        if committed {
            self.client_config = next.clone();
        } else {
            for transfer in transfers {
                for donor in &transfer.donors {
                    self.nodes[donor.as_str()].abort_handoff(transfer.shard);
                }
            }
        }
        committed
    }

    /// A full reconfiguration, both phases back-to-back (no interleaved
    /// workload; use [`SimCluster::plan_transfers`] /
    /// [`SimCluster::precopy`] / [`SimCluster::finalize`] to interleave).
    pub fn reconfigure(&mut self, next: &ClusterConfig) -> bool {
        let transfers = self.plan_transfers(next);
        for transfer in &transfers {
            self.precopy(transfer);
        }
        self.finalize(next, &transfers)
    }

    /// Grows the census: pre-copies the joiner's shards, commits the
    /// next epoch.
    pub fn join(&mut self, member: &str) -> bool {
        self.refresh_config();
        let next = self.client_config.with_join(member);
        self.reconfigure(&next)
    }

    /// Shrinks the census: re-replicates the leaver's shards onto the
    /// survivors, commits the next epoch (the leaver participates in the
    /// round if it is still up).
    pub fn leave(&mut self, member: &str) -> bool {
        self.refresh_config();
        let next = self.client_config.with_leave(member);
        self.reconfigure(&next)
    }

    /// Splits a shard's range at its midpoint, transferring the upper
    /// half to its (possibly new) replica set.
    pub fn split_shard(&mut self, shard: ShardId) -> bool {
        self.refresh_config();
        let next = self.client_config.with_split(shard);
        self.reconfigure(&next)
    }

    /// Migrates a shard onto an explicit replica set.
    pub fn migrate_shard(&mut self, shard: ShardId, replicas: &[&str]) -> bool {
        self.refresh_config();
        let next = self.client_config.with_migrate(shard, replicas);
        self.reconfigure(&next)
    }

    /// Fail-stops a node and wipes its store (disk loss).
    pub fn crash(&mut self, member: &str) {
        self.nodes[member].crash_and_wipe();
    }

    /// Rebuilds a crashed replica from the surviving replicas of every
    /// shard it owns, then brings it back up. The union of survivor
    /// pulls covers every write-quorum-committed entry (quorum
    /// intersection: each committed write lives on at least one
    /// survivor). Returns entries recovered.
    pub fn recover(&mut self, member: &str) -> u64 {
        self.refresh_config();
        let config = self.client_config.clone();
        let mut recovered = 0;
        for shard in &config.shards {
            if !shard.replicas.iter().any(|r| r == member) {
                continue;
            }
            let (start, end) = config.shard_range(shard.id).expect("shard in own config");
            for donor in &shard.replicas {
                if donor == member || !self.nodes[donor.as_str()].is_up() {
                    continue;
                }
                recovered += self
                    .pull(
                        donor,
                        member,
                        shard.id,
                        (start, end),
                        PullMode::Snapshot { track: false },
                    )
                    .entries;
            }
        }
        let node = &self.nodes[member];
        node.restart();
        node.install_config(&config);
        recovered
    }
}

/// The census of a config round: old ∪ new members, sorted — a leaver
/// still votes on its own departure, a joiner already votes on its
/// arrival.
fn round_census(current: &ClusterConfig, next: &ClusterConfig) -> Vec<String> {
    let mut census: Vec<String> =
        current.census.iter().chain(next.census.iter()).cloned().collect();
    census.sort();
    census.dedup();
    census
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_cluster_serves_quorum_ops() {
        let mut cluster = SimCluster::new(FaultPlan::ideal(), &["N1", "N2", "N3"], 4);
        let version = cluster.put("alpha", "1").expect("put commits");
        assert!(version > 0);
        let found = cluster.get("alpha").expect("get succeeds").expect("value present");
        assert_eq!(found.value, "1");
        assert_eq!(cluster.get("missing").expect("get succeeds"), None);
    }

    #[test]
    fn join_bumps_the_epoch_and_keeps_data() {
        let mut cluster = SimCluster::new(FaultPlan::ideal(), &["N1", "N2", "N3"], 4);
        for i in 0..24 {
            cluster.put(&format!("k{i}"), &format!("v{i}")).expect("put commits");
        }
        assert!(cluster.join("N4"), "join commits");
        assert_eq!(cluster.config().epoch, 2);
        assert!(cluster.config().census.contains(&"N4".to_string()));
        for i in 0..24 {
            let found = cluster.get(&format!("k{i}")).expect("get").expect("survives join");
            assert_eq!(found.value, format!("v{i}"));
        }
    }

    #[test]
    fn stale_client_gets_a_typed_error_then_recovers() {
        let mut cluster = SimCluster::new(FaultPlan::ideal(), &["N1", "N2", "N3"], 4);
        cluster.put("k", "v").expect("put");
        let next = cluster.config().with_join("N4");
        let transfers = cluster.plan_transfers(&next);
        for t in &transfers {
            cluster.precopy(t);
        }
        assert!(cluster.finalize(&next, &transfers));
        // The client's cached view was refreshed by finalize, so force
        // a stale stamp to observe the typed rejection.
        cluster.client_config.epoch -= 1;
        let (_, result) = cluster.raw_op(KvsOp::Get { key: "k".into() });
        assert!(
            matches!(result, Err(KvsError::StaleEpoch { observed: 2 })),
            "stale stamp must be fenced, got {result:?}"
        );
        cluster.refresh_config();
        assert_eq!(cluster.get("k").expect("get").expect("value").value, "v");
    }

    #[test]
    fn crash_then_recover_rebuilds_the_replica() {
        let mut cluster = SimCluster::new(FaultPlan::ideal(), &["N1", "N2", "N3"], 4);
        for i in 0..16 {
            cluster.put(&format!("k{i}"), "v").expect("put");
        }
        cluster.crash("N2");
        assert_eq!(cluster.node("N2").entry_count(), 0);
        // The cluster keeps serving on the survivors.
        for i in 0..16 {
            assert!(cluster.get(&format!("k{i}")).expect("get").is_some());
        }
        let recovered = cluster.recover("N2");
        assert!(recovered > 0, "recovery pulled entries");
        assert!(cluster.node("N2").entry_count() > 0);
        for i in 0..16 {
            assert!(cluster.get(&format!("k{i}")).expect("get").is_some());
        }
    }
}
