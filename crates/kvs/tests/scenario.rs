//! End-to-end scenario on an ideal network: a mixed workload flows
//! through a join, a live shard split (ops interleaved with the
//! pre-copy), a migration, a crash + quorum-served degraded window,
//! replica recovery, and a leave — with every read checked against the
//! in-driver per-key model.

use chorus_kvs::cluster::SimCluster;
use chorus_kvs::data_plane::KvsError;
use chorus_kvs::node::KvsOp;
use chorus_transport::FaultPlan;

fn workload(cluster: &mut SimCluster, round: u64, keys: u64) {
    for i in 0..keys {
        let key = format!("key-{i}");
        cluster.put(&key, &format!("r{round}-{i}")).expect("put commits on ideal net");
        let found = cluster.get(&key).expect("get succeeds").expect("key present");
        assert_eq!(found.value, format!("r{round}-{i}"));
    }
}

#[test]
fn lifecycle_join_split_migrate_crash_recover_leave() {
    let mut cluster = SimCluster::new(FaultPlan::ideal(), &["N1", "N2", "N3"], 4);
    cluster.set_chunk(8);

    // Steady state.
    workload(&mut cluster, 0, 32);

    // Join: the fourth node takes over its rendezvous winners.
    assert!(cluster.join("N4"), "join commits");
    assert_eq!(cluster.config().epoch, 2);
    workload(&mut cluster, 1, 32);

    // Live split with ops interleaved between pre-copy and finalize:
    // writes to every shard keep committing during the tracked
    // snapshot phase, including to the shard being split.
    let victim = cluster.config().shard_of("key-0").id;
    let next = cluster.config().with_split(victim);
    let transfers = cluster.plan_transfers(&next);
    for transfer in &transfers {
        cluster.precopy(transfer);
        workload(&mut cluster, 2, 16);
    }
    assert!(cluster.finalize(&next, &transfers), "split commits");
    assert_eq!(cluster.config().epoch, 3);
    let window = cluster.last_freeze_window().expect("freeze window recorded");
    assert!(window.frames > 0, "the final deltas and commit round moved frames");
    workload(&mut cluster, 3, 32);

    // Migrate one shard onto an explicit replica set.
    let target = cluster.config().shards[0].id;
    assert!(cluster.migrate_shard(target, &["N2", "N3", "N4"]), "migrate commits");
    workload(&mut cluster, 4, 32);

    // Crash a node; quorums keep serving.
    cluster.crash("N1");
    for i in 0..32 {
        let key = format!("key-{i}");
        match cluster.get(&key) {
            Ok(found) => assert!(found.is_some(), "{key} survives the crash"),
            Err(KvsError::Unavailable { .. }) => {} // typed, never a hang
            Err(other) => panic!("unexpected error during crash window: {other}"),
        }
    }

    // Recover it from the survivors and verify it serves again.
    let recovered = cluster.recover("N1");
    assert!(recovered > 0, "recovery pulled entries from survivors");
    assert!(cluster.node("N1").is_up());
    workload(&mut cluster, 5, 32);

    // Leave: shrink back to three members.
    assert!(cluster.leave("N2"), "leave commits");
    assert!(!cluster.config().census.contains(&"N2".to_string()));
    workload(&mut cluster, 6, 32);

    // Sanity on overall coverage: every op above went through the
    // checker.
    assert!(cluster.model.checked() > 400, "model checked {} ops", cluster.model.checked());
}

#[test]
fn stale_epoch_is_fenced_not_hung() {
    let mut cluster = SimCluster::new(FaultPlan::ideal(), &["N1", "N2", "N3"], 2);
    cluster.put("pivot", "v1").expect("put");

    // Reconfigure behind the client's back, then issue an op with the
    // old stamp: every replica must fence it.
    let next = cluster.config().with_join("N4");
    assert!(cluster.reconfigure(&next));
    cluster_force_stale(&mut cluster);
    let (_, result) = cluster.raw_op(KvsOp::Get { key: "pivot".into() });
    assert!(matches!(result, Err(KvsError::StaleEpoch { .. })), "got {result:?}");

    // The public path refreshes and retries transparently.
    cluster_force_stale(&mut cluster);
    assert_eq!(cluster.get("pivot").expect("get").expect("present").value, "v1");
}

/// Rewinds the client's cached epoch so its next stamp is stale.
fn cluster_force_stale(cluster: &mut SimCluster) {
    let mut config = cluster.config().clone();
    config.epoch -= 1;
    cluster.set_config_for_test(config);
}
