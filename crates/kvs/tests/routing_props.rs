//! Property tests pinning the routing layer: key→shard assignment is
//! total and deterministic, replica assignment is stable, and
//! reconfiguration moves only what it must (minimal disruption).

use chorus_kvs::config::{fnv1a, ClusterConfig};
use proptest::prelude::*;

const CANDIDATES: [&str; 4] = ["N1", "N2", "N3", "N4"];

/// A nonempty subset of the candidates, picked by bitmask (the shim has
/// no `sample::subsequence`).
fn arb_census() -> impl Strategy<Value = Vec<&'static str>> {
    (1u8..16).prop_map(|mask| {
        CANDIDATES
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, n)| *n)
            .collect()
    })
}

fn arb_config() -> impl Strategy<Value = ClusterConfig> {
    (arb_census(), 1u32..=8).prop_map(|(census, shards)| ClusterConfig::bootstrap(&census, shards))
}

proptest! {
    /// Every key routes to exactly one shard, and that shard's range
    /// contains the key's hash — the assignment is total.
    #[test]
    fn routing_is_total(config in arb_config(), key in ".{0,40}") {
        let hash = fnv1a(key.as_bytes());
        let shard = config.shard_of(&key);
        let (start, end) = config.shard_range(shard.id).expect("own shard has a range");
        prop_assert!(start <= hash);
        prop_assert!(hash < end || (end == u64::MAX && hash == u64::MAX));
        // No other shard claims the same hash.
        let owners = config
            .shards
            .iter()
            .filter(|s| {
                let (lo, hi) = config.shard_range(s.id).unwrap();
                lo <= hash && (hash < hi || (hi == u64::MAX && hash == u64::MAX))
            })
            .count();
        prop_assert_eq!(owners, 1);
    }

    /// Routing depends only on the config value: rebuilding the same
    /// config from scratch (as another process would) routes every key
    /// identically, and replica sets come out identical too.
    #[test]
    fn routing_is_deterministic_across_processes(
        census in arb_census(),
        shards in 1u32..=8,
        keys in proptest::collection::vec(".{0,24}", 1..24),
    ) {
        let a = ClusterConfig::bootstrap(&census, shards);
        let b = ClusterConfig::bootstrap(&census, shards);
        prop_assert_eq!(&a, &b);
        for key in &keys {
            prop_assert_eq!(a.shard_of(key).id, b.shard_of(key).id);
            prop_assert_eq!(&a.shard_of(key).replicas, &b.shard_of(key).replicas);
        }
    }

    /// Replica sets always have exactly `replication_factor` distinct
    /// census members.
    #[test]
    fn replica_sets_are_well_formed(config in arb_config()) {
        for shard in &config.shards {
            prop_assert_eq!(shard.replicas.len(), config.replication_factor());
            let mut dedup = shard.replicas.clone();
            dedup.sort();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), shard.replicas.len());
            for replica in &shard.replicas {
                prop_assert!(config.census.contains(replica));
            }
        }
    }

    /// A split moves only keys in the split shard's upper half: every
    /// key previously routed to any *other* shard keeps its shard id
    /// and replica set.
    #[test]
    fn split_disrupts_only_the_split_shard(
        config in arb_config(),
        pick in 0usize..8,
        keys in proptest::collection::vec(".{0,24}", 1..32),
    ) {
        let target = config.shards[pick % config.shards.len()].id;
        let next = config.with_split(target);
        prop_assert_eq!(next.epoch, config.epoch + 1);
        for key in &keys {
            let before = config.shard_of(key);
            let after = next.shard_of(key);
            if before.id != target {
                prop_assert_eq!(after.id, before.id);
                prop_assert_eq!(&after.replicas, &before.replicas);
            } else {
                // Split-shard keys stay on the parent (lower half) or
                // move to the one fresh shard (upper half).
                prop_assert!(after.id == target || after.id == config.next_shard_id);
            }
        }
    }

    /// A migrate changes only the migrated shard's replica set; every
    /// shard keeps its key range.
    #[test]
    fn migrate_disrupts_only_the_migrated_shard(
        config in arb_config(),
        pick in 0usize..8,
        keys in proptest::collection::vec(".{0,24}", 1..32),
    ) {
        let target = config.shards[pick % config.shards.len()].id;
        let replicas: Vec<&str> = config.census.iter().map(|s| s.as_str()).take(config.replication_factor()).collect();
        let next = config.with_migrate(target, &replicas);
        for key in &keys {
            let before = config.shard_of(key);
            let after = next.shard_of(key);
            prop_assert_eq!(after.id, before.id, "migrate never re-routes keys");
            if before.id != target {
                prop_assert_eq!(&after.replicas, &before.replicas);
            }
        }
    }

    /// A join only *adds* replica responsibility where the joiner wins
    /// rendezvous; a surviving member never gains or loses a shard it
    /// already held unless the joiner displaced the lowest scorer.
    #[test]
    fn join_moves_at_most_one_replica_per_shard(
        mask in 1u8..8,
        shards in 1u32..=8,
    ) {
        let candidates = ["N1", "N2", "N3"];
        let census: Vec<&str> = candidates
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, n)| *n)
            .collect();
        let config = ClusterConfig::bootstrap(&census, shards);
        let next = config.with_join("N4");
        for shard in &config.shards {
            let after = &next.shards.iter().find(|s| s.id == shard.id).unwrap().replicas;
            let lost: Vec<_> = shard.replicas.iter().filter(|r| !after.contains(r)).collect();
            let gained: Vec<_> = after.iter().filter(|r| !shard.replicas.contains(r)).collect();
            prop_assert!(lost.len() <= 1, "at most the displaced lowest scorer leaves");
            prop_assert!(gained.iter().all(|g| g.as_str() == "N4"), "only the joiner gains");
        }
    }
}
