//! The DPrio fair lottery (paper §6, Appendix C): clients secret-share
//! values to servers; the servers commit-then-open random draws to pick
//! a winner; the analyst reconstructs one client's value without
//! learning whose. Pass `--cheat` to watch a dishonest server get caught
//! by commitment verification.
//!
//! Run with: `cargo run --example lottery [-- --cheat]`

use chorus_repro::core::{Endpoint, LocationSet as _};
use chorus_repro::mpc::field::FLOTTERY;
use chorus_repro::protocols::lottery::Lottery;
use chorus_repro::protocols::roles::{Analyst, C1, C2, C3, S1, S2};
use chorus_repro::transport::{LocalTransport, LocalTransportChannel};
use std::marker::PhantomData;

type Clients = chorus_repro::core::LocationSet!(C1, C2, C3);
type Servers = chorus_repro::core::LocationSet!(S1, S2);
type Census = chorus_repro::core::LocationSet!(Analyst, C1, C2, C3, S1, S2);

fn main() {
    let cheat = std::env::args().any(|a| a == "--cheat");
    let secrets = [("C1", 1001u64), ("C2", 2002), ("C3", 3003)];
    println!("client secrets: {secrets:?}");
    if cheat {
        println!("server S2 will open a value it never committed to ...");
    }

    let channel = LocalTransportChannel::<Census>::new();
    let mut handles = Vec::new();

    macro_rules! client {
        ($ty:ty, $secret:expr) => {{
            let c = channel.clone();
            handles.push(std::thread::spawn(move || {
                let endpoint = Endpoint::builder(<$ty>::default())
                    .transport(LocalTransport::new(<$ty>::default(), c))
                    .build();
                let session = endpoint.session();
                let _ =
                    session.epp_and_run(Lottery::<Clients, Servers, Census, _, _, _, _, _, _, _> {
                        secrets: &session.local_faceted(FLOTTERY::new($secret)),
                        tau: 300,
                        cheaters: &session.remote_faceted(Servers::new()),
                        phantom: PhantomData,
                    });
            }));
        }};
    }

    macro_rules! server {
        ($ty:ty, $cheats:expr) => {{
            let c = channel.clone();
            let cheats: bool = $cheats;
            handles.push(std::thread::spawn(move || {
                let endpoint = Endpoint::builder(<$ty>::default())
                    .transport(LocalTransport::new(<$ty>::default(), c))
                    .build();
                let session = endpoint.session();
                let _ =
                    session.epp_and_run(Lottery::<Clients, Servers, Census, _, _, _, _, _, _, _> {
                        secrets: &session.remote_faceted(Clients::new()),
                        tau: 300,
                        cheaters: &session.local_faceted(cheats),
                        phantom: PhantomData,
                    });
            }));
        }};
    }

    client!(C1, 1001);
    client!(C2, 2002);
    client!(C3, 3003);
    server!(S1, false);
    server!(S2, cheat);

    // The analyst.
    let endpoint =
        Endpoint::builder(Analyst).transport(LocalTransport::new(Analyst, channel)).build();
    let session = endpoint.session();
    let out = session.epp_and_run(Lottery::<Clients, Servers, Census, _, _, _, _, _, _, _> {
        secrets: &session.remote_faceted(Clients::new()),
        tau: 300,
        cheaters: &session.remote_faceted(Servers::new()),
        phantom: PhantomData,
    });

    for h in handles {
        h.join().expect("endpoint thread");
    }

    match session.unwrap(out) {
        Ok(value) => {
            println!("[Analyst] reconstructed {value} (one of the secrets, sender unknown)");
            assert!(secrets.iter().any(|(_, v)| *v == value));
            assert!(!cheat, "a cheating run must abort");
        }
        Err(e) => {
            println!("[Analyst] lottery aborted: {e}");
            assert!(cheat, "honest runs must succeed");
        }
    }
}
