//! Secure three-party majority vote via the GMW protocol (paper §6,
//! Appendix A): each party holds a private bit; everyone learns the
//! majority and nothing else.
//!
//! Run with: `cargo run --example gmw -- 1 0 1`
//! (arguments are the three parties' private votes; default `1 0 1`)

use chorus_repro::core::{ChoreographyLocation as _, Endpoint};
use chorus_repro::mpc::Circuit;
use chorus_repro::protocols::gmw::Gmw;
use chorus_repro::protocols::roles::{P1, P2, P3};
use chorus_repro::transport::{LocalTransport, LocalTransportChannel};
use std::marker::PhantomData;

type Parties = chorus_repro::core::LocationSet!(P1, P2, P3);

fn majority_circuit() -> Circuit {
    let a = || Circuit::input("P1", 0);
    let b = || Circuit::input("P2", 0);
    let c = || Circuit::input("P3", 0);
    // majority(a,b,c) = ab ⊕ ac ⊕ bc over GF(2)
    a().and(b()).xor(a().and(c())).xor(b().and(c()))
}

fn main() {
    let votes: Vec<bool> =
        std::env::args().skip(1).map(|s| s != "0").chain([true, false, true]).take(3).collect();
    println!("private votes: P1={} P2={} P3={}", votes[0], votes[1], votes[2]);

    let channel = LocalTransportChannel::<Parties>::new();
    let circuit = std::sync::Arc::new(majority_circuit());

    let mut handles = Vec::new();
    macro_rules! party {
        ($ty:ty, $vote:expr) => {{
            let c = channel.clone();
            let circuit = std::sync::Arc::clone(&circuit);
            let vote: bool = $vote;
            handles.push(std::thread::spawn(move || {
                let endpoint = Endpoint::builder(<$ty>::new())
                    .transport(LocalTransport::new(<$ty>::new(), c))
                    .build();
                let session = endpoint.session();
                let result = session.epp_and_run(Gmw::<Parties, _, _> {
                    circuit: &circuit,
                    inputs: &session.local_faceted(vec![vote]),
                    phantom: PhantomData,
                });
                println!("[{}] learned the majority: {result}", <$ty>::NAME);
                result
            }));
        }};
    }

    party!(P1, votes[0]);
    party!(P2, votes[1]);
    party!(P3, votes[2]);

    let results: Vec<bool> = handles.into_iter().map(|h| h.join().expect("party")).collect();
    let expected = (votes[0] && votes[1]) ^ (votes[0] && votes[2]) ^ (votes[1] && votes[2]);
    assert!(results.iter().all(|r| *r == expected), "parties disagree");
    println!("majority = {expected} — computed without revealing any vote.");
}
