//! The Byzantine-hardened DPrio lottery: the same protocol as
//! `examples/lottery.rs`, wrapped in the `chorus_patterns` building
//! blocks — a preflight heartbeat probing every server link, epoch
//! anti-replay on the commit/open exchanges, and a census-wide verdict
//! exchange that turns one victim's local suspicion into an agreed,
//! *named* culprit. Pass `--cheat` to watch server S2 open a value it
//! never committed to and get named in the `Misbehavior` verdict every
//! participant agrees on — instead of the plain protocol's anonymous
//! abort.
//!
//! Run with: `cargo run --example hardened_lottery [-- --cheat]`

use chorus_repro::core::{Endpoint, LocationSet as _};
use chorus_repro::mpc::field::FLOTTERY;
use chorus_repro::protocols::hardened::HardenedLottery;
use chorus_repro::protocols::roles::{Analyst, C1, C2, C3, S1, S2, S3};
use chorus_repro::transport::{LocalTransport, LocalTransportChannel};
use std::marker::PhantomData;

type Clients = chorus_repro::core::LocationSet!(C1, C2, C3);
type Servers = chorus_repro::core::LocationSet!(S1, S2, S3);
type Census = chorus_repro::core::LocationSet!(Analyst, C1, C2, C3, S1, S2, S3);

/// One run of the lottery for everyone who wants the winning secret.
const EPOCH: u64 = 1;

fn main() {
    let cheat = std::env::args().any(|a| a == "--cheat");
    let secrets = [("C1", 1001u64), ("C2", 2002), ("C3", 3003)];
    println!("client secrets: {secrets:?}");
    if cheat {
        println!("server S2 will open a value it never committed to ...");
    }

    let channel = LocalTransportChannel::<Census>::new();
    let mut handles = Vec::new();

    macro_rules! client {
        ($ty:ty, $secret:expr) => {{
            let c = channel.clone();
            handles.push(std::thread::spawn(move || {
                let endpoint = Endpoint::builder(<$ty>::default())
                    .transport(LocalTransport::new(<$ty>::default(), c))
                    .build();
                let session = endpoint.session();
                let _ = session.epp_and_run(HardenedLottery::<
                    Clients,
                    Servers,
                    Census,
                    _,
                    _,
                    _,
                    _,
                    _,
                    _,
                    _,
                > {
                    secrets: &session.local_faceted(FLOTTERY::new($secret)),
                    tau: 300,
                    epoch: EPOCH,
                    cheaters: &session.remote_faceted(Servers::new()),
                    phantom: PhantomData,
                });
            }));
        }};
    }

    macro_rules! server {
        ($ty:ty, $cheats:expr) => {{
            let c = channel.clone();
            let cheats: bool = $cheats;
            handles.push(std::thread::spawn(move || {
                let endpoint = Endpoint::builder(<$ty>::default())
                    .transport(LocalTransport::new(<$ty>::default(), c))
                    .build();
                let session = endpoint.session();
                let _ = session.epp_and_run(HardenedLottery::<
                    Clients,
                    Servers,
                    Census,
                    _,
                    _,
                    _,
                    _,
                    _,
                    _,
                    _,
                > {
                    secrets: &session.remote_faceted(Clients::new()),
                    tau: 300,
                    epoch: EPOCH,
                    cheaters: &session.local_faceted(cheats),
                    phantom: PhantomData,
                });
            }));
        }};
    }

    client!(C1, 1001);
    client!(C2, 2002);
    client!(C3, 3003);
    server!(S1, false);
    server!(S2, cheat);
    server!(S3, false);

    // The analyst.
    let endpoint =
        Endpoint::builder(Analyst).transport(LocalTransport::new(Analyst, channel)).build();
    let session = endpoint.session();
    let out =
        session.epp_and_run(HardenedLottery::<Clients, Servers, Census, _, _, _, _, _, _, _> {
            secrets: &session.remote_faceted(Clients::new()),
            tau: 300,
            epoch: EPOCH,
            cheaters: &session.remote_faceted(Servers::new()),
            phantom: PhantomData,
        });

    for h in handles {
        h.join().expect("endpoint thread");
    }

    match session.unwrap(out) {
        Ok(value) => {
            println!("[Analyst] reconstructed {value} (one of the secrets, sender unknown)");
            assert!(secrets.iter().any(|(_, v)| *v == value));
            assert!(!cheat, "a cheating run must abort");
        }
        Err(m) => {
            println!("[Analyst] lottery aborted with an agreed verdict: {m}");
            assert!(cheat, "honest runs must succeed");
            assert_eq!(m.culprit, "S2", "the verdict names the actual cheater");
        }
    }
}
