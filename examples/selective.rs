//! Experiment E8 (paper §4.2): translating a select-&-merge choreography
//! into conclaves-&-MLVs.
//!
//! In a select-&-merge language, a seller would decide accept/reject
//! inside one conditional and `select` the outcome to the buyer and the
//! shipper. The paper's recipe for conclaves-&-MLVs systems:
//!
//! > "Each branch of the setup will end where the select was, and return
//! > the selected flag. In between the two conditionals the controlling
//! > party multicasts the chosen flag; the continuation branches on that
//! > multiply-located flag and picks up where the setup left off."
//!
//! This example implements exactly that decomposition for a
//! buyer/seller/shipper negotiation and instruments the transport to
//! show the shipper receives exactly one knowledge-of-choice bit.
//!
//! Run with: `cargo run --example selective`

use chorus_repro::core::{
    ChoreoOp, Choreography, Endpoint, Located, LocationSet as _, MultiplyLocated,
};
use chorus_repro::transport::{LocalTransport, LocalTransportChannel, TransportMetrics};
use std::sync::Arc;

chorus_repro::core::locations! { Buyer, Seller, Shipper }

type Census = chorus_repro::core::LocationSet!(Buyer, Seller, Shipper);
type Negotiators = chorus_repro::core::LocationSet!(Seller, Buyer);
type Fulfillment = chorus_repro::core::LocationSet!(Seller, Shipper);

const ASKING_PRICE: u32 = 100;

/// Top level: setup conclave → flag relay → continuation conclave.
struct Negotiate {
    offer: Located<u32, Buyer>,
}

impl Choreography<Located<Option<u64>, Buyer>> for Negotiate {
    type L = Census;

    fn run(self, op: &impl ChoreoOp<Self::L>) -> Located<Option<u64>, Buyer> {
        let offer = op.comm(Buyer, Seller, &self.offer);

        // SETUP: the conditional runs among the negotiators only and
        // "ends where the select was", returning the selected flag as an
        // MLV — this is the decision a select would have communicated.
        let decision: MultiplyLocated<bool, Negotiators> = op.conclave(Setup { offer }).flatten();

        // IN BETWEEN: the controlling party (the seller) multicasts the
        // chosen flag to the continuation's participants. This is the
        // shipper's *only* knowledge-of-choice message.
        let at_seller = op.locally(Seller, |un| un.unwrap(&decision));
        let relayed: MultiplyLocated<bool, Fulfillment> =
            op.multicast(Seller, Fulfillment::new(), &at_seller);

        // CONTINUATION: branches on the multiply-located flag and picks
        // up where the setup left off.
        let tracking: Located<Option<u64>, Seller> =
            op.conclave(Fulfill { accepted: relayed }).flatten().flatten();

        op.comm(Seller, Buyer, &tracking)
    }
}

/// The negotiators' conditional: accept iff the offer meets the price.
struct Setup {
    offer: Located<u32, Seller>,
}

impl Choreography<MultiplyLocated<bool, Negotiators>> for Setup {
    type L = Negotiators;

    fn run(self, op: &impl ChoreoOp<Self::L>) -> MultiplyLocated<bool, Negotiators> {
        let decision = op.locally(Seller, |un| *un.unwrap_ref(&self.offer) >= ASKING_PRICE);
        // Where select-&-merge would `select`, we return the flag as an
        // MLV shared by the conclave.
        op.multicast(Seller, Negotiators::new(), &decision)
    }
}

/// The fulfillment conditional, reusing the relayed flag with no further
/// communication for knowledge of choice.
struct Fulfill {
    accepted: MultiplyLocated<bool, Fulfillment>,
}

impl Choreography<MultiplyLocated<Located<Option<u64>, Seller>, Fulfillment>> for Fulfill {
    type L = Fulfillment;

    fn run(
        self,
        op: &impl ChoreoOp<Self::L>,
    ) -> MultiplyLocated<Located<Option<u64>, Seller>, Fulfillment> {
        let accepted = op.naked(self.accepted);
        op.conclave(FulfillBranch { accepted })
    }
}

struct FulfillBranch {
    accepted: bool,
}

impl Choreography<Located<Option<u64>, Seller>> for FulfillBranch {
    type L = Fulfillment;

    fn run(self, op: &impl ChoreoOp<Self::L>) -> Located<Option<u64>, Seller> {
        if self.accepted {
            let tracking = op.locally(Shipper, |_| 41255u64);
            let at_seller = op.comm(Shipper, Seller, &tracking);
            op.locally(Seller, |un| Some(*un.unwrap_ref(&at_seller)))
        } else {
            op.locally(Seller, |_| None)
        }
    }
}

fn run_offer(offer: u32) -> (Option<u64>, Arc<TransportMetrics>) {
    let channel = LocalTransportChannel::<Census>::new();
    let metrics = Arc::new(TransportMetrics::new());
    let mut handles = Vec::new();

    macro_rules! endpoint {
        ($ty:ty) => {{
            let c = channel.clone();
            let m = Arc::clone(&metrics);
            handles.push(std::thread::spawn(move || {
                let endpoint = Endpoint::builder(<$ty>::default())
                    .transport(LocalTransport::new(<$ty>::default(), c))
                    .layer(m)
                    .build();
                let session = endpoint.session();
                session.epp_and_run(Negotiate { offer: session.remote(Buyer) });
            }));
        }};
    }

    let buyer_channel = channel.clone();
    let buyer_metrics = Arc::clone(&metrics);
    let buyer = std::thread::spawn(move || {
        let endpoint = Endpoint::builder(Buyer)
            .transport(LocalTransport::new(Buyer, buyer_channel))
            .layer(buyer_metrics)
            .build();
        let session = endpoint.session();
        let out = session.epp_and_run(Negotiate { offer: session.local(offer) });
        session.unwrap(out)
    });
    endpoint!(Seller);
    endpoint!(Shipper);

    let result = buyer.join().expect("buyer");
    for h in handles {
        h.join().expect("endpoint");
    }
    (result, metrics)
}

fn main() {
    let (tracking, metrics) = run_offer(120);
    println!("offer 120 -> tracking {tracking:?}");
    println!("  shipper received {} message(s): the KoC flag", metrics.messages_to("Shipper"));
    assert_eq!(tracking, Some(41255));
    assert_eq!(metrics.messages_to("Shipper"), 1);

    let (tracking, metrics) = run_offer(80);
    println!("offer  80 -> tracking {tracking:?}");
    println!("  shipper received {} message(s): the KoC flag", metrics.messages_to("Shipper"));
    assert_eq!(tracking, None);
    assert_eq!(metrics.messages_to("Shipper"), 1);

    println!("select-&-merge decomposed into sequential conclaves: the shipper's");
    println!("knowledge of choice costs exactly one multicast bit, in both branches.");
}
