//! The sharded, replicated KVS with a dynamic census, end to end: a
//! three-node cluster bootstraps, serves a quorum-replicated workload,
//! grows to four nodes (`Join`), loses a replica to a crash, keeps
//! serving on quorums, and rebuilds the replica from the survivors
//! (`RecoverReplica`) — every reconfiguration a new fenced config
//! epoch, every client operation checked against a per-key consistency
//! model.
//!
//! Run with: `cargo run --example kvs_cluster`

use chorus_repro::kvs::cluster::SimCluster;
use chorus_repro::transport::FaultPlan;

fn main() {
    let mut cluster = SimCluster::new(FaultPlan::ideal(), &["N1", "N2", "N3"], 4);
    println!(
        "booted: census={:?}, {} shards, RF={}, W=R={}",
        cluster.config().census,
        cluster.config().shards.len(),
        cluster.config().replication_factor(),
        cluster.config().write_quorum(),
    );

    // A quorum-replicated workload.
    for i in 0..32 {
        cluster.put(&format!("key-{i}"), &format!("v{i}")).expect("put commits");
    }
    println!("wrote 32 keys across {} shards (epoch 1)", cluster.config().shards.len());

    // Grow the census: N4 joins, pre-copies its rendezvous-won shards
    // live, and a new fenced epoch commits.
    assert!(cluster.join("N4"), "join commits");
    println!(
        "N4 joined: epoch {} committed, census={:?}",
        cluster.config().epoch,
        cluster.config().census
    );
    for i in 0..32 {
        let found = cluster.get(&format!("key-{i}")).expect("get").expect("present");
        assert_eq!(found.value, format!("v{i}"));
    }
    println!("all 32 keys survived the join");

    // Crash a replica (fail-stop + disk loss): quorums keep serving.
    cluster.crash("N2");
    let mut served = 0;
    for i in 0..32 {
        if cluster.get(&format!("key-{i}")).expect("quorum get").is_some() {
            served += 1;
        }
    }
    println!("N2 crashed (store wiped); quorum reads still served {served}/32 keys");

    // Rebuild it from the surviving replicas of every shard it owns.
    let recovered = cluster.recover("N2");
    println!("N2 recovered: {recovered} entries pulled from survivors, node back up");

    for i in 0..32 {
        cluster.put(&format!("key-{i}"), &format!("v{i}-post")).expect("put commits");
        let found = cluster.get(&format!("key-{i}")).expect("get").expect("present");
        assert_eq!(found.value, format!("v{i}-post"));
    }
    println!(
        "post-recovery workload clean; consistency model checked {} operations",
        cluster.model.checked()
    );
}
