//! The paper's Fig. 2 case study as a running cluster: a client, a
//! primary, and two backups over TCP, with fault injection to trigger
//! the hash-check + resynch path — all without the client ever hearing
//! about it.
//!
//! Run with: `cargo run --example kvs_cluster`

use chorus_repro::core::{ChoreographyLocation as _, Endpoint, LocationSet as _};
use chorus_repro::protocols::kvs_backup::{KvsCensus, ReplicatedKvs, Servers};
use chorus_repro::protocols::roles::{Backup1, Backup2, Client, Primary};
use chorus_repro::protocols::store::{Request, SharedStore};
use chorus_repro::transport::{free_local_addrs, TcpConfigBuilder, TcpTransport};
use std::marker::PhantomData;

type Backups = chorus_repro::core::LocationSet!(Backup1, Backup2);
type Census = KvsCensus<Backups>;

fn main() {
    let addrs = free_local_addrs(4).expect("reserve loopback ports");
    let config = TcpConfigBuilder::new()
        .location(Client, addrs[0])
        .location(Primary, addrs[1])
        .location(Backup1, addrs[2])
        .location(Backup2, addrs[3])
        .build::<Census>()
        .expect("complete address book");

    // Each "process": bind a TCP endpoint, project the choreography to
    // itself, run. Backup1's store is armed to corrupt its next write,
    // which the servers will detect and repair after responding.
    let mut handles = Vec::new();

    macro_rules! server {
        ($loc:expr, $ty:ty, $corrupt:expr) => {{
            let cfg = config.clone();
            handles.push(std::thread::spawn(move || {
                let endpoint = Endpoint::builder(<$ty>::new())
                    .transport(TcpTransport::bind(<$ty>::new(), cfg).expect("bind"))
                    .build();
                let session = endpoint.session();
                let store = SharedStore::new();
                if $corrupt {
                    store.corrupt_next_put();
                }
                let outcome = session.epp_and_run(ReplicatedKvs::<Backups, _, _, _> {
                    request: session.remote(Client),
                    states: session.local_faceted(store.clone()),
                    phantom: PhantomData,
                });
                let resynched = session.unwrap(outcome.resynched);
                println!(
                    "[{}] done; resynched={resynched}; store={:?}",
                    <$ty>::NAME,
                    store.snapshot()
                );
                resynched
            }));
        }};
    }

    server!(Primary, Primary, false);
    server!(Backup1, Backup1, true); // fault injection
    server!(Backup2, Backup2, false);

    let cfg = config;
    let client = std::thread::spawn(move || {
        let endpoint = Endpoint::builder(Client)
            .transport(TcpTransport::bind(Client, cfg).expect("bind client"))
            .build();
        let session = endpoint.session();
        let outcome = session.epp_and_run(ReplicatedKvs::<Backups, _, _, _> {
            request: session.local(Request::Put("paper".into(), "pldi-2025".into())),
            states: session.remote_faceted(<Servers<Backups>>::new()),
            phantom: PhantomData,
        });
        let response = session.unwrap(outcome.response);
        println!("[Client]  response: {response:?} (client knows nothing of the resynch)");
    });

    client.join().unwrap();
    let resynched: Vec<bool> =
        handles.into_iter().map(|h| h.join().expect("server thread")).collect();
    assert!(resynched.iter().all(|r| *r), "all servers should agree the resynch happened");
    println!("the corrupted replica was repaired behind the client's back.");
}
