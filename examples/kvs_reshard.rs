//! Live resharding under load: a shard splits while a mixed `Get`/`Put`
//! workload keeps flowing. The handoff pre-copies a tracked snapshot
//! with writes still landing (dirty keys caught for later), then
//! freezes only the moving range for the final delta + config commit —
//! no full-cluster stop-the-world. The example reports the freeze
//! window and proves writes to *other* shards committed mid-migration.
//!
//! Run with: `cargo run --example kvs_reshard`

use chorus_repro::kvs::cluster::SimCluster;
use chorus_repro::transport::FaultPlan;

fn main() {
    let mut cluster = SimCluster::new(FaultPlan::ideal(), &["N1", "N2", "N3", "N4"], 2);
    cluster.set_chunk(8);

    for i in 0..48 {
        cluster.put(&format!("key-{i}"), &format!("v{i}")).expect("put commits");
    }
    let victim = cluster.config().shard_of("key-0").id;
    let (start, end) = cluster.config().shard_range(victim).unwrap();
    println!(
        "epoch {}: {} shards; splitting shard {victim} (range {start:#x}..{end:#x})",
        cluster.config().epoch,
        cluster.config().shards.len()
    );

    // Phase 1: tracked snapshot pre-copy, workload interleaved — writes
    // keep committing everywhere, including into the splitting shard.
    let next = cluster.config().with_split(victim);
    let transfers = cluster.plan_transfers(&next);
    let mut precopied = 0;
    for transfer in &transfers {
        precopied += cluster.precopy(transfer);
        for i in 0..16 {
            cluster
                .put(&format!("key-{i}"), &format!("mid-{i}"))
                .expect("writes flow during pre-copy");
        }
    }
    println!(
        "pre-copy shipped {precopied} entries to {} recipient(s) with writes flowing",
        transfers.len()
    );

    // Phase 2: freeze only the moving range, ship the delta, commit the
    // new epoch.
    assert!(cluster.finalize(&next, &transfers), "split commits");
    let window = cluster.last_freeze_window().expect("window recorded");
    println!(
        "epoch {} committed: {} shards; freeze window: {} frames, {:?} wall",
        cluster.config().epoch,
        cluster.config().shards.len(),
        window.frames,
        window.wall
    );

    for i in 0..48 {
        let found = cluster.get(&format!("key-{i}")).expect("get").expect("present");
        let expect = if i < 16 { format!("mid-{i}") } else { format!("v{i}") };
        assert_eq!(found.value, expect);
    }
    println!(
        "all 48 keys consistent post-split; model checked {} operations",
        cluster.model.checked()
    );
}
