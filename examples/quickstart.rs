//! Quickstart: the paper's Fig. 1 — a client/server key-value store —
//! written once and executed three ways: centralized, over in-process
//! channels, and over TCP sockets.
//!
//! Run with: `cargo run --example quickstart`

use chorus_repro::core::{Projector, Runner};
use chorus_repro::protocols::kvs_simple::{SimpleKvs, SimpleKvsCensus};
use chorus_repro::protocols::roles::{Client, Primary};
use chorus_repro::protocols::store::{Request, Response, SharedStore};
use chorus_repro::transport::{
    free_local_addrs, LocalTransport, LocalTransportChannel, TcpConfigBuilder, TcpTransport,
};

fn main() {
    // 1. Centralized: run the choreography directly — handy for tests.
    let runner: Runner<SimpleKvsCensus> = Runner::new();
    let store = SharedStore::new();
    let put = SimpleKvs {
        request: runner.local(Request::Put("title".into(), "choreographies".into())),
        state: runner.local(store.clone()),
    };
    let response = runner.unwrap_located(runner.run(put));
    println!("[centralized] put -> {response:?}");

    // 2. Projected over in-process channels: each participant is a
    //    thread; endpoint projection happens at run time.
    let channel = LocalTransportChannel::<SimpleKvsCensus>::new();
    let ch = channel.clone();
    let store_for_server = store.clone();
    let server = std::thread::spawn(move || {
        let transport = LocalTransport::new(Primary, ch);
        let projector = Projector::new(Primary, &transport);
        projector.epp_and_run(SimpleKvs {
            request: projector.remote(Client),
            state: projector.local(store_for_server),
        });
    });
    let transport = LocalTransport::new(Client, channel);
    let projector = Projector::new(Client, &transport);
    let out = projector.epp_and_run(SimpleKvs {
        request: projector.local(Request::Get("title".into())),
        state: projector.remote(Primary),
    });
    server.join().unwrap();
    let answer = projector.unwrap(out);
    println!("[channels]    get -> {answer:?}");
    assert_eq!(answer, Response::Found("choreographies".into()));

    // 3. The same choreography over TCP sockets: real processes would
    //    each run one branch of this; here both endpoints share a
    //    process for demonstration.
    let addrs = free_local_addrs(2).expect("reserve loopback ports");
    let config = TcpConfigBuilder::new()
        .location(Client, addrs[0])
        .location(Primary, addrs[1])
        .build::<SimpleKvsCensus>()
        .expect("complete address book");

    let cfg = config.clone();
    let store_for_server = store.clone();
    let server = std::thread::spawn(move || {
        let transport = TcpTransport::bind(Primary, cfg).expect("bind server");
        let projector = Projector::new(Primary, &transport);
        projector.epp_and_run(SimpleKvs {
            request: projector.remote(Client),
            state: projector.local(store_for_server),
        });
    });
    let transport = TcpTransport::bind(Client, config).expect("bind client");
    let projector = Projector::new(Client, &transport);
    let out = projector.epp_and_run(SimpleKvs {
        request: projector.local(Request::Get("title".into())),
        state: projector.remote(Primary),
    });
    server.join().unwrap();
    let answer = projector.unwrap(out);
    println!("[tcp]         get -> {answer:?}");
    assert_eq!(answer, Response::Found("choreographies".into()));

    println!("one choreography, three transports — all agree.");
}
