//! Quickstart: the paper's Fig. 1 — a client/server key-value store —
//! written once and executed three ways: centralized, over in-process
//! channels, and over TCP sockets. The distributed runs use the
//! session-multiplexed endpoint API: build an `Endpoint` once per
//! process, open a `Session` per choreography run.
//!
//! Run with: `cargo run --example quickstart`

use chorus_repro::core::{Endpoint, Runner};
use chorus_repro::protocols::kvs_simple::{SimpleKvs, SimpleKvsCensus};
use chorus_repro::protocols::roles::{Client, Primary};
use chorus_repro::protocols::store::{Request, Response, SharedStore};
use chorus_repro::transport::{
    free_local_addrs, LocalTransport, LocalTransportChannel, TcpConfigBuilder, TcpTransport,
};

fn main() {
    // 1. Centralized: run the choreography directly — handy for tests.
    let runner: Runner<SimpleKvsCensus> = Runner::new();
    let store = SharedStore::new();
    let put = SimpleKvs {
        request: runner.local(Request::Put("title".into(), "choreographies".into())),
        state: runner.local(store.clone()),
    };
    let response = runner.unwrap_located(runner.run(put));
    println!("[centralized] put -> {response:?}");

    // 2. Projected over in-process channels: each participant is a
    //    thread with a long-lived endpoint; each run is a session.
    let channel = LocalTransportChannel::<SimpleKvsCensus>::new();
    let ch = channel.clone();
    let store_for_server = store.clone();
    let server = std::thread::spawn(move || {
        let endpoint =
            Endpoint::builder(Primary).transport(LocalTransport::new(Primary, ch)).build();
        let session = endpoint.session();
        session.epp_and_run(SimpleKvs {
            request: session.remote(Client),
            state: session.local(store_for_server),
        });
    });
    let endpoint =
        Endpoint::builder(Client).transport(LocalTransport::new(Client, channel)).build();
    let session = endpoint.session();
    let out = session.epp_and_run(SimpleKvs {
        request: session.local(Request::Get("title".into())),
        state: session.remote(Primary),
    });
    server.join().unwrap();
    let answer = session.unwrap(out);
    println!("[channels]    get -> {answer:?}");
    assert_eq!(answer, Response::Found("choreographies".into()));

    // 3. The same choreography over TCP sockets: real processes would
    //    each run one branch of this; here both endpoints share a
    //    process for demonstration.
    let addrs = free_local_addrs(2).expect("reserve loopback ports");
    let config = TcpConfigBuilder::new()
        .location(Client, addrs[0])
        .location(Primary, addrs[1])
        .build::<SimpleKvsCensus>()
        .expect("complete address book");

    let cfg = config.clone();
    let store_for_server = store.clone();
    let server = std::thread::spawn(move || {
        let endpoint = Endpoint::builder(Primary)
            .transport(TcpTransport::bind(Primary, cfg).expect("bind server"))
            .build();
        let session = endpoint.session();
        session.epp_and_run(SimpleKvs {
            request: session.remote(Client),
            state: session.local(store_for_server),
        });
    });
    let endpoint = Endpoint::builder(Client)
        .transport(TcpTransport::bind(Client, config).expect("bind client"))
        .build();
    let session = endpoint.session();
    let out = session.epp_and_run(SimpleKvs {
        request: session.local(Request::Get("title".into())),
        state: session.remote(Primary),
    });
    server.join().unwrap();
    let answer = session.unwrap(out);
    println!("[tcp]         get -> {answer:?}");
    assert_eq!(answer, Response::Found("choreographies".into()));

    println!("one choreography, three transports — all agree.");
}
