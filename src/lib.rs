//! Facade crate for the PLDI 2025 reproduction of *Efficient, Portable,
//! Census-Polymorphic Choreographic Programming*.
//!
//! Re-exports every workspace crate under one roof:
//!
//! * [`core`] — the choreographic programming library (conclaves, MLVs,
//!   census polymorphism, EPP-as-DI).
//! * [`wire`] — the binary serde wire format.
//! * [`transport`] — in-process, TCP, and instrumented transports.
//! * [`lambda`] — the executable λC/λL/λN formal model.
//! * [`mpc`] — fields, secret sharing, SHA-256, oblivious transfer.
//! * [`patterns`] — Byzantine-robust building blocks (broadcast-gather,
//!   commit-reveal verification, propose-and-acknowledge).
//! * [`protocols`] — the paper's case studies.
//! * [`kvs`] — the sharded, replicated KVS with dynamic census
//!   (join/leave, live resharding, replica recovery).
//! * [`baseline`] — the HasChor-style broadcast-KoC baseline.
//!
//! See `README.md` for a guided tour, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for the reproduced tables/figures.

pub use chorus_baseline as baseline;
pub use chorus_core as core;
pub use chorus_kvs as kvs;
pub use chorus_lambda as lambda;
pub use chorus_mpc as mpc;
pub use chorus_patterns as patterns;
pub use chorus_protocols as protocols;
pub use chorus_transport as transport;
pub use chorus_wire as wire;
